"""The nine uFLIP micro-benchmarks (Section 3.2, Table 1).

Each micro-benchmark is a collection of related experiments over the
baseline patterns, all sharing one varying parameter:

1. **Granularity** (IOSize)      6. **Parallelism** (ParallelDegree)
2. **Alignment** (IOShift)       7. **Mix** (Ratio)
3. **Locality** (TargetSize)     8. **Pause** (Pause)
4. **Partitioning** (Partitions) 9. **Bursts** (Burst)
5. **Order** (Incr)

A tenth, **Queue depth** (QueueDepth), extends the paper's synchronous
host model with NCQ-style in-flight IO.

Builders take the device capacity (patterns must fit the scaled
devices) and run-control parameters; parameter ranges default to
tractable subsets of Table 1's full ranges, which are available from
:func:`table1_values`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.experiment import Experiment
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelSpec,
    PatternSpec,
    baselines,
)
from repro.errors import PatternError
from repro.iotypes import Mode
from repro.units import KIB, MSEC, SECTOR

#: canonical Table 1 parameter ranges
_TABLE1 = {
    # [2^0 .. 2^9] x 512B, plus some non-powers of two
    "granularity": tuple(SECTOR * (1 << k) for k in range(10))
    + (3 * KIB, 24 * KIB, 48 * KIB),
    # [2^0 .. IOSize/512] x 512B (depends on IOSize; see alignment())
    "alignment": None,
    # Rnd: [2^0 .. 2^16] x IOSize ; Seq: [2^0 .. 2^8] x IOSize
    "locality_random": tuple(1 << k for k in range(17)),
    "locality_sequential": tuple(1 << k for k in range(9)),
    # [2^0 .. 2^8]
    "partitioning": tuple(1 << k for k in range(9)),
    # [-1, 0, 2^0 .. 2^8]
    "order": (-1, 0) + tuple(1 << k for k in range(9)),
    # [2^0 .. 2^4]
    "parallelism": tuple(1 << k for k in range(5)),
    # [2^0 .. 2^6]
    "mix": tuple(1 << k for k in range(7)),
    # [2^0 .. 2^8] x 0.1 ms
    "pause": tuple((1 << k) * 0.1 * MSEC for k in range(9)),
    # [2^0 .. 2^6] x 10 (with Pause fixed, e.g. 100 ms)
    "bursts": tuple((1 << k) * 10 for k in range(7)),
    # [2^0 .. 2^5] in-flight IOs (extension beyond the paper: the paper's
    # hosts are synchronous, i.e. QueueDepth = 1)
    "queue_depth": tuple(1 << k for k in range(6)),
}

#: the six baseline combinations of the Mix micro-benchmark (Table 1)
MIX_COMBOS = (
    ("SR", "RR"),
    ("SR", "RW"),
    ("SR", "SW"),
    ("RR", "SW"),
    ("RR", "RW"),
    ("SW", "RW"),
)


def table1_values(name: str):
    """The full Table 1 range for a micro-benchmark parameter."""
    if name not in _TABLE1 or _TABLE1[name] is None:
        raise PatternError(f"no canonical Table 1 range recorded for {name!r}")
    return _TABLE1[name]


@dataclass(frozen=True)
class MicroBenchmark:
    """A named collection of experiments sharing one varying parameter."""

    name: str
    parameter: str
    experiments: tuple[Experiment, ...]

    def experiment(self, label: str) -> Experiment:
        """The experiment for one baseline label (e.g. ``\"RW\"``)."""
        for experiment in self.experiments:
            if experiment.name.endswith(f"/{label}"):
                return experiment
        raise PatternError(f"micro-benchmark {self.name!r} has no experiment {label!r}")


@dataclass(frozen=True)
class BenchContext:
    """Shared run-control parameters for micro-benchmark builders."""

    capacity: int
    io_size: int = 32 * KIB
    io_count: int = 128
    io_ignore: int = 0
    seed: int = 42

    def random_area(self) -> int:
        """Target area for random patterns: the whole device, rounded
        down to an IO boundary (the paper draws over a large area)."""
        return (self.capacity // self.io_size) * self.io_size

    def baselines(self, io_size: int | None = None, io_count: int | None = None):
        """The four baseline specs at this context's defaults."""
        size = io_size or self.io_size
        count = io_count or self.io_count
        area = (self.capacity // size) * size
        specs = baselines(
            io_size=size,
            io_count=count,
            random_target_size=area,
            sequential_target_size=area,
            seed=self.seed,
        )
        return {
            label: spec.with_(io_ignore=min(self.io_ignore, count - 1))
            for label, spec in specs.items()
        }


BASELINE_LABELS = ("SR", "RR", "SW", "RW")


# ----------------------------------------------------------------------
# 1. Granularity (IOSize)
# ----------------------------------------------------------------------

def granularity(ctx: BenchContext, sizes: Sequence[int] | None = None) -> MicroBenchmark:
    """Vary IOSize to find the granularity the FTL favours (Fig. 6/7)."""
    values = tuple(sizes or tuple(s for s in _TABLE1["granularity"] if s <= ctx.capacity))

    def build_for(label: str) -> Callable[[int], PatternSpec]:
        def build(io_size: int) -> PatternSpec:
            return ctx.baselines(io_size=io_size)[label]

        return build

    experiments = tuple(
        Experiment(
            name=f"granularity/{label}",
            parameter="IOSize",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("granularity", "IOSize", experiments)


# ----------------------------------------------------------------------
# 2. Alignment (IOShift)
# ----------------------------------------------------------------------

def alignment(ctx: BenchContext, shifts: Sequence[int] | None = None) -> MicroBenchmark:
    """Vary IOShift from 0 to IOSize (Table 1: [2^0..IOSize/512] x 512B)."""
    if shifts is None:
        shifts = [0] + [SECTOR * (1 << k) for k in range(20) if SECTOR * (1 << k) <= ctx.io_size]
    values = tuple(shifts)

    def build_for(label: str) -> Callable[[int], PatternSpec]:
        def build(io_shift: int) -> PatternSpec:
            spec = ctx.baselines()[label]
            # keep the shifted footprint on the device
            shrunk = spec.target_size
            if spec.target_offset + io_shift + shrunk > ctx.capacity:
                shrunk -= spec.io_size
            return spec.with_(io_shift=io_shift, target_size=shrunk)

        return build

    experiments = tuple(
        Experiment(
            name=f"alignment/{label}",
            parameter="IOShift",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("alignment", "IOShift", experiments)


# ----------------------------------------------------------------------
# 3. Locality (TargetSize)
# ----------------------------------------------------------------------

def locality(
    ctx: BenchContext,
    multipliers_random: Sequence[int] | None = None,
    multipliers_sequential: Sequence[int] | None = None,
) -> MicroBenchmark:
    """Vary TargetSize down to IOSize (Fig. 8: random writes in a small
    area behave like sequential writes)."""
    max_mult = ctx.capacity // ctx.io_size
    random_multipliers = tuple(
        m for m in (multipliers_random or _TABLE1["locality_random"]) if m <= max_mult
    )
    seq_multipliers = tuple(
        m
        for m in (multipliers_sequential or _TABLE1["locality_sequential"])
        if m <= max_mult
    )

    def build_for(label: str) -> Callable[[int], PatternSpec]:
        def build(multiplier: int) -> PatternSpec:
            spec = ctx.baselines()[label]
            return spec.with_(target_size=multiplier * ctx.io_size)

        return build

    experiments = []
    for label in BASELINE_LABELS:
        multipliers = random_multipliers if label in ("RR", "RW") else seq_multipliers
        experiments.append(
            Experiment(
                name=f"locality/{label}",
                parameter="TargetSize",
                values=multipliers,
                build=build_for(label),
            )
        )
    return MicroBenchmark("locality", "TargetSize", tuple(experiments))


# ----------------------------------------------------------------------
# 4. Partitioning (Partitions)
# ----------------------------------------------------------------------

def partitioning(
    ctx: BenchContext, partition_counts: Sequence[int] | None = None
) -> MicroBenchmark:
    """Round-robin sequential IO over Partitions partitions (the external
    sort merge pattern).  Sequential patterns only (Table 1)."""
    values = tuple(
        p
        for p in (partition_counts or _TABLE1["partitioning"])
        if p <= ctx.io_count
    )

    def build_for(mode: Mode) -> Callable[[int], PatternSpec]:
        def build(partitions: int) -> PatternSpec:
            # target must split evenly: round io_count down per partition
            per_partition = max(1, ctx.io_count // partitions)
            target = partitions * per_partition * ctx.io_size
            return PatternSpec(
                mode=mode,
                location=LocationKind.PARTITIONED,
                io_size=ctx.io_size,
                io_count=ctx.io_count,
                io_ignore=min(ctx.io_ignore, ctx.io_count - 1),
                target_size=target,
                partitions=partitions,
                seed=ctx.seed,
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"partitioning/{label}",
            parameter="Partitions",
            values=values,
            build=build_for(mode),
        )
        for label, mode in (("SR", Mode.READ), ("SW", Mode.WRITE))
    )
    return MicroBenchmark("partitioning", "Partitions", experiments)


# ----------------------------------------------------------------------
# 5. Order (Incr)
# ----------------------------------------------------------------------

def order(ctx: BenchContext, increments: Sequence[int] | None = None) -> MicroBenchmark:
    """Linear LBA increments: reverse (-1), in-place (0), gaps (>1).
    Sequential patterns only (Table 1)."""
    values = tuple(increments or _TABLE1["order"])

    def build_for(mode: Mode) -> Callable[[int], PatternSpec]:
        def build(incr: int) -> PatternSpec:
            # the ordered footprint spans |incr| * io_count IOs (modulo
            # wrap); keep it within the device
            span = max(1, abs(incr)) * ctx.io_count * ctx.io_size
            target = min(span, (ctx.capacity // ctx.io_size) * ctx.io_size)
            return PatternSpec(
                mode=mode,
                location=LocationKind.ORDERED,
                io_size=ctx.io_size,
                io_count=ctx.io_count,
                io_ignore=min(ctx.io_ignore, ctx.io_count - 1),
                target_size=target,
                incr=incr,
                seed=ctx.seed,
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"order/{label}",
            parameter="Incr",
            values=values,
            build=build_for(mode),
        )
        for label, mode in (("SR", Mode.READ), ("SW", Mode.WRITE))
    )
    return MicroBenchmark("order", "Incr", experiments)


# ----------------------------------------------------------------------
# 6. Parallelism (ParallelDegree)
# ----------------------------------------------------------------------

def parallelism(ctx: BenchContext, degrees: Sequence[int] | None = None) -> MicroBenchmark:
    """Replicate each baseline over ParallelDegree processes."""
    values = tuple(degrees or _TABLE1["parallelism"])
    max_degree = max(values)

    def build_for(label: str) -> Callable[[int], ParallelSpec]:
        def build(degree: int) -> ParallelSpec:
            spec = ctx.baselines()[label]
            # the target space must split evenly among the max degree so
            # the series is comparable across degrees
            slots = (spec.target_size // spec.io_size // max_degree) * max_degree
            if slots < degree:
                raise PatternError("target space too small for this degree")
            return ParallelSpec(
                base=spec.with_(target_size=slots * spec.io_size),
                parallel_degree=degree,
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"parallelism/{label}",
            parameter="ParallelDegree",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("parallelism", "ParallelDegree", experiments)


# ----------------------------------------------------------------------
# 7. Mix (Ratio)
# ----------------------------------------------------------------------

def mix(ctx: BenchContext, ratios: Sequence[int] | None = None) -> MicroBenchmark:
    """Compose two baselines, Ratio primaries per secondary (six combos)."""
    values = tuple(ratios or _TABLE1["mix"])

    def build_for(primary_label: str, secondary_label: str) -> Callable[[int], MixSpec]:
        def build(ratio: int) -> MixSpec:
            half = (ctx.capacity // 2 // ctx.io_size) * ctx.io_size
            specs = baselines(
                io_size=ctx.io_size,
                io_count=ctx.io_count,
                random_target_size=half,
                seed=ctx.seed,
            )
            primary = specs[primary_label]
            secondary = specs[secondary_label].with_(target_offset=half)
            if primary.footprint[1] > half:
                primary = primary.with_(target_size=half)
            return MixSpec(
                primary=primary,
                secondary=secondary,
                ratio=ratio,
                io_count=ctx.io_count,
                io_ignore=min(ctx.io_ignore, ctx.io_count - 1),
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"mix/{primary}+{secondary}",
            parameter="Ratio",
            values=values,
            build=build_for(primary, secondary),
        )
        for primary, secondary in MIX_COMBOS
    )
    return MicroBenchmark("mix", "Ratio", experiments)


# ----------------------------------------------------------------------
# 8. Pause (Pause)
# ----------------------------------------------------------------------

def pause(ctx: BenchContext, pauses_usec: Sequence[float] | None = None) -> MicroBenchmark:
    """Insert a pause between IOs: does asynchronous reclamation help?"""
    values = tuple(pauses_usec or _TABLE1["pause"])

    def build_for(label: str) -> Callable[[float], PatternSpec]:
        def build(pause_value: float) -> PatternSpec:
            from repro.core.patterns import TimingKind

            return ctx.baselines()[label].with_(
                timing=TimingKind.PAUSE, pause_usec=pause_value
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"pause/{label}",
            parameter="Pause",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("pause", "Pause", experiments)


# ----------------------------------------------------------------------
# 9. Bursts (Burst)
# ----------------------------------------------------------------------

def bursts(
    ctx: BenchContext,
    burst_sizes: Sequence[int] | None = None,
    pause_usec: float = 100.0 * MSEC,
) -> MicroBenchmark:
    """Pause fixed (e.g. 100 ms), vary the Burst group size: how does
    asynchronous overhead accumulate?"""
    values = tuple(burst_sizes or _TABLE1["bursts"])

    def build_for(label: str) -> Callable[[int], PatternSpec]:
        def build(burst: int) -> PatternSpec:
            from repro.core.patterns import TimingKind

            return ctx.baselines()[label].with_(
                timing=TimingKind.BURST, pause_usec=pause_usec, burst=burst
            )

        return build

    experiments = tuple(
        Experiment(
            name=f"bursts/{label}",
            parameter="Burst",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("bursts", "Burst", experiments)


# ----------------------------------------------------------------------
# 10. Queue depth (QueueDepth) — extension beyond the paper
# ----------------------------------------------------------------------

def queue_depth(ctx: BenchContext, depths: Sequence[int] | None = None) -> MicroBenchmark:
    """Vary the NCQ queue depth over each baseline (extension: the
    paper's bench runs synchronously, one IO in flight).  At depth 1
    this reproduces the synchronous reference bit-for-bit; past the
    device's channel count the response-time curve should flatten."""
    values = tuple(depths or _TABLE1["queue_depth"])

    def build_for(label: str) -> Callable[[int], PatternSpec]:
        def build(depth: int) -> PatternSpec:
            return ctx.baselines()[label].with_(queue_depth=depth)

        return build

    experiments = tuple(
        Experiment(
            name=f"queue_depth/{label}",
            parameter="QueueDepth",
            values=values,
            build=build_for(label),
        )
        for label in BASELINE_LABELS
    )
    return MicroBenchmark("queue_depth", "QueueDepth", experiments)


#: registry of the micro-benchmark builders (the paper's nine plus the
#: queue-depth extension)
MICROBENCHMARKS: dict[str, Callable[..., MicroBenchmark]] = {
    "granularity": granularity,
    "alignment": alignment,
    "locality": locality,
    "partitioning": partitioning,
    "order": order,
    "parallelism": parallelism,
    "mix": mix,
    "pause": pause,
    "bursts": bursts,
    "queue_depth": queue_depth,
}


def build_microbenchmark(name: str, ctx: BenchContext, **kwargs) -> MicroBenchmark:
    """Build one of the nine micro-benchmarks by name."""
    try:
        builder = MICROBENCHMARKS[name]
    except KeyError:
        raise PatternError(
            f"unknown micro-benchmark {name!r}; known: {', '.join(MICROBENCHMARKS)}"
        ) from None
    return builder(ctx, **kwargs)
