"""Run execution: drive a pattern against a device and collect a trace.

A *run* is one execution of a reference pattern against a device
(Section 3.2, design principle 1).  The runner connects a pattern
generator to a host model, captures per-IO completions in an
:class:`~repro.flashsim.trace.IOTrace` and summarises them (excluding
the start-up IOs) into :class:`~repro.core.stats.RunStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generator import MixGenerator, PatternGenerator
from repro.core.patterns import MixSpec, ParallelMixSpec, ParallelSpec, PatternSpec
from repro.core.stats import RunStats, summarize
from repro.flashsim.device import FlashDevice
from repro.flashsim.host import ParallelHost, SyncHost
from repro.flashsim.trace import IOTrace


@dataclass
class Run:
    """One executed pattern: the spec, the per-IO trace and its summary."""

    spec: PatternSpec
    trace: IOTrace
    stats: RunStats

    @property
    def label(self) -> str:
        """Human-readable pattern label (e.g. ``SW``, ``2 SR / 1 RW``)."""
        return self.spec.label

    def restat(self, io_ignore: int) -> RunStats:
        """Re-summarise with a different warm-up cut (phase analysis)."""
        return summarize(self.trace.response_times(), io_ignore)


@dataclass
class MixRun:
    """One executed mix: overall plus per-component summaries."""

    spec: MixSpec
    trace: IOTrace
    stats: RunStats
    primary_stats: RunStats
    secondary_stats: RunStats

    @property
    def label(self) -> str:
        """Human-readable pattern label (e.g. ``SW``, ``2 SR / 1 RW``)."""
        return self.spec.label


@dataclass
class ParallelRun:
    """One executed parallel pattern: per-process runs plus the merged view."""

    spec: ParallelSpec
    runs: list[Run] = field(default_factory=list)
    stats: RunStats | None = None

    @property
    def label(self) -> str:
        """Human-readable pattern label (e.g. ``SW``, ``2 SR / 1 RW``)."""
        return self.spec.label


def execute(
    device: FlashDevice,
    spec: PatternSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> Run:
    """Execute one basic pattern synchronously.

    ``start_at`` defaults to the device's current busy horizon so
    successive runs follow each other in simulated time (use
    :func:`rest_device` or ``device.idle`` to model the methodology's
    inter-run pause).
    """
    at = device.busy_until if start_at is None else start_at
    host = SyncHost(device, os_overhead_usec=os_overhead_usec)
    completions = host.run(PatternGenerator(spec, start_at=at), start_at=at)
    trace = IOTrace()
    trace.extend(completions)
    stats = summarize(trace.response_times(), spec.io_ignore)
    return Run(spec=spec, trace=trace, stats=stats)


def execute_mix(
    device: FlashDevice,
    spec: MixSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> MixRun:
    """Execute a mixed pattern, splitting statistics per component.

    The warm-up cut (``io_ignore``) is applied on the mix-level index,
    as the FlashIO tool scales it for mixed workloads (Section 5.1).
    """
    at = device.busy_until if start_at is None else start_at
    host = SyncHost(device, os_overhead_usec=os_overhead_usec)
    generator = MixGenerator(spec, start_at=at)
    completions = host.run(generator, start_at=at)
    trace = IOTrace()
    trace.extend(completions)
    responses = trace.response_times()
    stats = summarize(responses, spec.io_ignore)
    per_component: list[list[float]] = [[], []]
    for position, which in enumerate(generator.component_log):
        if position < spec.io_ignore:
            continue
        per_component[which].append(responses[position])
    primary_stats = summarize(per_component[0]) if per_component[0] else stats
    secondary_stats = summarize(per_component[1]) if per_component[1] else stats
    return MixRun(
        spec=spec,
        trace=trace,
        stats=stats,
        primary_stats=primary_stats,
        secondary_stats=secondary_stats,
    )


def execute_parallel(
    device: FlashDevice,
    spec: ParallelSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> ParallelRun:
    """Execute ``ParallelDegree`` concurrent copies of a baseline.

    Response times include queueing behind the other processes — the
    measurement a synchronous host thread actually observes.
    """
    at = device.busy_until if start_at is None else start_at
    host = ParallelHost(device, os_overhead_usec=os_overhead_usec)
    process_specs = spec.process_specs()
    feeds = [PatternGenerator(s, start_at=at) for s in process_specs]
    per_process = host.run(feeds, start_at=at)
    result = ParallelRun(spec=spec)
    all_responses: list[float] = []
    for process_spec, completions in zip(process_specs, per_process):
        trace = IOTrace()
        trace.extend(completions)
        responses = trace.response_times()
        stats = summarize(responses, process_spec.io_ignore)
        result.runs.append(Run(spec=process_spec, trace=trace, stats=stats))
        all_responses.extend(responses[process_spec.io_ignore :])
    result.stats = summarize(all_responses)
    return result


@dataclass
class ParallelMixRun:
    """One executed heterogeneous parallel pattern."""

    spec: "ParallelMixSpec"
    runs: list[Run] = field(default_factory=list)
    stats: RunStats | None = None

    @property
    def label(self) -> str:
        """Human-readable pattern label (e.g. ``SW``, ``2 SR / 1 RW``)."""
        return self.spec.label


def execute_parallel_mix(
    device: FlashDevice,
    spec: "ParallelMixSpec",
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> ParallelMixRun:
    """Execute different basic patterns concurrently (one process each,
    Section 3.1's second form of parallel pattern).

    The merged stats cover every process past its own warm-up.
    """
    at = device.busy_until if start_at is None else start_at
    host = ParallelHost(device, os_overhead_usec=os_overhead_usec)
    feeds = [PatternGenerator(s, start_at=at) for s in spec.components]
    per_process = host.run(feeds, start_at=at)
    result = ParallelMixRun(spec=spec)
    all_responses: list[float] = []
    for component, completions in zip(spec.components, per_process):
        trace = IOTrace()
        trace.extend(completions)
        responses = trace.response_times()
        stats = summarize(responses, component.io_ignore)
        result.runs.append(Run(spec=component, trace=trace, stats=stats))
        all_responses.extend(responses[component.io_ignore :])
    result.stats = summarize(all_responses)
    return result


def rest_device(device: FlashDevice, pause_usec: float) -> None:
    """Model the methodology's pause between runs (Section 4.3).

    The device is idle for ``pause_usec`` (background reclamation uses
    the gap), and its volatile RAM cache destages — a multi-second pause
    is ample for the couple of megabytes such caches hold, and a real
    write-back cache must destage promptly for durability anyway.
    Deferred FTL merges beyond what the idle credit covers survive the
    pause, exactly like on the paper's Mtron (Figure 5).
    """
    from repro.flashsim.timing import CostAccumulator

    # destage first: the deferred merges the flush creates are then
    # serviced by the idle grant below, like on a resting real device
    scratch = CostAccumulator()
    device.controller.flush_cache(scratch)
    device.idle(device.busy_until + pause_usec)
