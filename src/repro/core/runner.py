"""Run execution front-ends (compatibility layer over the engine).

A *run* is one execution of a reference pattern against a device
(Section 3.2, design principle 1).  The run result classes and the
actual execution logic live in :mod:`repro.core.engine`; this module
keeps the original per-spec-kind entry points so existing callers,
tests and benchmarks continue to work, while every path funnels through
the same spec-polymorphic :class:`~repro.core.engine.Engine`.
"""

from __future__ import annotations

from repro.core.engine import (
    Engine,
    MixRun,
    ParallelMixRun,
    ParallelRun,
    Run,
    rest_device,
)
from repro.core.patterns import MixSpec, ParallelMixSpec, ParallelSpec, PatternSpec
from repro.flashsim.device import FlashDevice


def execute(
    device: FlashDevice,
    spec: PatternSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> Run:
    """Execute one basic pattern synchronously.

    ``start_at`` defaults to the device's current busy horizon so
    successive runs follow each other in simulated time (use
    :func:`rest_device` or ``device.idle`` to model the methodology's
    inter-run pause).
    """
    return Engine(device, os_overhead_usec=os_overhead_usec).run(spec, start_at)


def execute_mix(
    device: FlashDevice,
    spec: MixSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> MixRun:
    """Execute a mixed pattern, splitting statistics per component."""
    return Engine(device, os_overhead_usec=os_overhead_usec).run(spec, start_at)


def execute_parallel(
    device: FlashDevice,
    spec: ParallelSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> ParallelRun:
    """Execute ``ParallelDegree`` concurrent copies of a baseline."""
    return Engine(device, os_overhead_usec=os_overhead_usec).run(spec, start_at)


def execute_parallel_mix(
    device: FlashDevice,
    spec: ParallelMixSpec,
    start_at: float | None = None,
    os_overhead_usec: float = 0.0,
) -> ParallelMixRun:
    """Execute different basic patterns concurrently (one process each)."""
    return Engine(device, os_overhead_usec=os_overhead_usec).run(spec, start_at)


__all__ = [
    "Engine",
    "MixRun",
    "ParallelMixRun",
    "ParallelRun",
    "Run",
    "execute",
    "execute_mix",
    "execute_parallel",
    "execute_parallel_mix",
    "rest_device",
]
