"""(Semi-)automatic tuning of experiment length — the paper's first
avenue of future work (Section 6): *tune the experiment length to
ensure that the start-up period is omitted and the running phase
captured sufficiently well to guarantee given bounds for the confidence
interval, while minimizing the IOs issued*.

:func:`autotune_run` executes a pattern incrementally against a device
— one generator, pulled in chunks — re-detecting the two phases after
each chunk and stopping as soon as the running-phase mean's confidence
interval is tight enough (or a hard IO budget is hit).  It returns the
tuned ``(io_ignore, io_count)`` with the measurements, so a benchmark
plan can reuse them for every run of the same reference pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generator import PatternGenerator
from repro.core.patterns import PatternSpec
from repro.core.phases import PhaseAnalysis, detect_phases
from repro.core.stats import RunStats, summarize
from repro.errors import AnalysisError
from repro.flashsim.device import FlashDevice

#: z-score for the default 95% confidence level
_Z95 = 1.96


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of an adaptive run."""

    io_ignore: int
    io_count: int
    stats: RunStats
    phases: PhaseAnalysis
    ci_halfwidth_usec: float
    relative_ci: float
    converged: bool
    chunks: int
    responses: tuple[float, ...]

    def summary(self) -> str:
        """One-line description of the tuning outcome."""
        marker = "converged" if self.converged else "budget hit"
        return (
            f"{marker}: IOIgnore={self.io_ignore} IOCount={self.io_count} "
            f"mean={self.stats.mean_usec / 1000:.3f} ms "
            f"+/- {self.ci_halfwidth_usec / 1000:.3f} ms "
            f"({100 * self.relative_ci:.1f}%)"
        )


def confidence_halfwidth(responses: np.ndarray) -> tuple[float, float]:
    """(CI half-width, half-width / mean) of a sample mean at 95%.

    Response times within a run are serially correlated (the running
    phase oscillates periodically), so the effective sample size is
    reduced by the lag-1 autocorrelation — the classic correction that
    keeps the interval honest for dependent samples.
    """
    n = responses.size
    mean = float(responses.mean()) if n else 0.0
    if n < 8 or mean == 0:
        return float("inf"), float("inf")
    centered = responses - mean
    denominator = float((centered * centered).sum())
    if denominator == 0:
        return 0.0, 0.0
    rho = float((centered[:-1] * centered[1:]).sum()) / denominator
    rho = max(-0.99, min(0.99, rho))
    effective_n = max(4.0, n * (1 - rho) / (1 + rho))
    half = _Z95 * float(responses.std(ddof=1)) / np.sqrt(effective_n)
    return half, half / mean


def autotune_run(
    device: FlashDevice,
    spec: PatternSpec,
    relative_ci: float = 0.10,
    chunk: int = 64,
    min_ios: int = 256,
    max_ios: int = 4096,
    min_running: int = 64,
    startup_margin: float = 1.25,
) -> AutotuneResult:
    """Run ``spec`` adaptively until the running-phase mean is known to
    within ``relative_ci`` (95% confidence), spending as few IOs as
    possible.

    The spec's own ``io_count``/``io_ignore`` are ignored; the pattern
    itself (sizes, locations, timing, seed) is preserved and simply
    extended up to ``max_ios`` IOs, consumed chunk by chunk.

    ``min_ios`` is the exploration floor: a start-up phase is cheap
    *and stable*, so a purely statistical criterion would converge
    inside it (Section 4.2's pitfall); the floor forces the run deep
    enough to expose a hidden phase transition first.  Convergence also
    requires the two halves of the running phase to agree, guarding
    against slow drift.
    """
    if not 0 < relative_ci < 1:
        raise AnalysisError("relative_ci must be in (0, 1)")
    if chunk < 16:
        raise AnalysisError("chunks below 16 IOs cannot support phase detection")
    if max_ios < chunk:
        raise AnalysisError("max_ios must be at least one chunk")
    if min_ios > max_ios:
        raise AnalysisError("min_ios cannot exceed max_ios")

    span = max(spec.target_size, _sequential_span(spec, max_ios))
    available = device.capacity - spec.target_offset - spec.io_shift
    span = min(span, (available // spec.io_size) * spec.io_size)
    long_spec = spec.with_(io_count=max_ios, io_ignore=0, target_size=span)
    start = device.busy_until
    generator = PatternGenerator(long_spec, start_at=start)

    responses: list[float] = []
    chunks = 0
    previous = None
    exhausted = False
    while len(responses) < max_ios and not exhausted:
        for __ in range(min(chunk, max_ios - len(responses))):
            request = generator(previous)
            if request is None:
                exhausted = True
                break
            previous = device.submit(request, max(request.scheduled_at, start))
            responses.append(previous.response_usec)
        chunks += 1

        values = np.asarray(responses)
        if values.size < max(min_ios, min_running, 16):
            continue
        phases = detect_phases(values)
        io_ignore = int(phases.startup * startup_margin) if phases.startup else 0
        running = values[io_ignore:]
        if running.size < min_running:
            continue
        half, rel = confidence_halfwidth(running)
        mid = running.size // 2
        halves_agree = _relative_gap(
            float(running[:mid].mean()), float(running[mid:].mean())
        ) <= 2 * relative_ci
        if rel <= relative_ci and halves_agree:
            return AutotuneResult(
                io_ignore=io_ignore,
                io_count=len(responses),
                stats=summarize(responses, io_ignore),
                phases=phases,
                ci_halfwidth_usec=half,
                relative_ci=rel,
                converged=True,
                chunks=chunks,
                responses=tuple(responses),
            )

    values = np.asarray(responses)
    phases = detect_phases(values)
    io_ignore = int(phases.startup * startup_margin) if phases.startup else 0
    io_ignore = max(0, min(io_ignore, len(responses) - min_running))
    running = values[io_ignore:]
    half, rel = confidence_halfwidth(running)
    return AutotuneResult(
        io_ignore=io_ignore,
        io_count=len(responses),
        stats=summarize(responses, io_ignore),
        phases=phases,
        ci_halfwidth_usec=half,
        relative_ci=rel,
        converged=False,
        chunks=chunks,
        responses=tuple(responses),
    )


def _relative_gap(a: float, b: float) -> float:
    denominator = max(abs(a), abs(b))
    return abs(a - b) / denominator if denominator else 0.0


def _sequential_span(spec: PatternSpec, io_count: int) -> int:
    """Target size needed for ``io_count`` non-wrapping sequential IOs
    (other locations keep their own target)."""
    if spec.location.value != "sequential":
        return spec.target_size
    return io_count * spec.io_size


__all__ = ["AutotuneResult", "autotune_run", "confidence_halfwidth"]
