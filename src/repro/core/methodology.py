"""Benchmarking methodology: device state and run-control selection.

Section 4.1: *ignoring the state of a flash device can lead to
meaningless performance measurements* — the paper's Samsung SSD wrote
16 KiB random IOs in ~1 ms out of the box and ~an order of magnitude
slower after the whole device had been written once.  uFLIP therefore
assumes **writing the whole device completely yields a well-defined
state**, and enforces it with random IOs of random size (0.5 KiB up to
the flash block size) over the whole device.

Section 5.1 gives the paper's concrete IOCount/IOIgnore rules, which
:func:`recommended_io_count` and :func:`recommended_io_ignore`
reproduce (scaled for the simulated capacities).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.patterns import PatternSpec
from repro.flashsim import analytic
from repro.flashsim.device import FlashDevice
from repro.iotypes import IORequest, Mode
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.units import SECTOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flashsim.snapshot import DeviceSnapshot


@dataclass(frozen=True)
class StateReport:
    """What a state-enforcement pass did."""

    method: str
    io_count: int
    bytes_written: int
    elapsed_usec: float
    mean_io_usec: float


def enforce_random_state(
    device: FlashDevice,
    coverage: float = 1.0,
    min_size: int = SECTOR,
    max_size: int | None = None,
    seed: int = 7,
) -> StateReport:
    """Enforce the random initial state (Section 4.1).

    Issues random writes of random size (``min_size`` up to the flash
    block size) at random sector-aligned locations until ``coverage``
    times the capacity has been written, then lets all deferred
    reclamation complete (the one-off enforcement is followed by ample
    idle time in practice).

    The random state is *stable*: only sequential writes disturb it
    significantly, which is why the benchmark plan directs those to
    fresh target spaces instead of re-enforcing.

    The write stream is RNG-driven, not response-driven, so the whole
    (size, lba) sequence is pre-drawn into columns and handed to the
    closed-form write kernel (:func:`repro.flashsim.analytic.write_window`):
    GC-free prefixes evaluate in one vectorized pass, and once the free
    pool reaches steady state the GC-epoch kernel absorbs the rest of
    the stream — closed-form appends between collections, the real
    relocation step at each watermark — so page-map and block-map
    enforcement runs end-to-end analytic.  Devices the kernels do not
    cover (hybrid/FAST families, caches, wear levelling, fault
    injection) fall back to the per-IO ``submit`` path below.
    """
    if coverage <= 0:
        raise ValueError("coverage must be positive")
    geometry = device.geometry
    top_size = max_size or geometry.block_size
    rng = random.Random(seed)
    target_bytes = int(coverage * geometry.logical_bytes)
    sizes: list[int] = []
    lbas: list[int] = []
    written = 0
    while written < target_bytes:
        size = rng.randrange(min_size, top_size + 1, SECTOR)
        max_lba = geometry.logical_bytes - size
        lbas.append(rng.randrange(0, max_lba + 1, SECTOR))
        sizes.append(size)
        written += size
    count = len(sizes)
    size_col = np.asarray(sizes, dtype=np.int64)
    lba_col = np.asarray(lbas, dtype=np.int64)
    now = device.busy_until
    start = now
    index = 0
    while index < count:
        done, now = analytic.write_window(
            device, lba_col[index:], size_col[index:], now
        )
        if done:
            index += done
        else:
            completed = device.submit(
                IORequest(index, lbas[index], sizes[index], Mode.WRITE), now
            )
            now = completed.completed_at
            index += 1
    device.drain()
    return StateReport(
        method="random",
        io_count=count,
        bytes_written=written,
        elapsed_usec=now - start,
        mean_io_usec=(now - start) / count if count else 0.0,
    )


def enforce_sequential_state(
    device: FlashDevice, io_size: int = 128 * 1024
) -> StateReport:
    """Enforce a sequential initial state (the faster but less stable
    alternative discussed in Section 4.1): one sequential pass over the
    whole device."""
    geometry = device.geometry
    now = device.busy_until
    start = now
    count = 0
    lba = 0
    while lba < geometry.logical_bytes:
        size = min(io_size, geometry.logical_bytes - lba)
        completed = device.submit(IORequest(count, lba, size, Mode.WRITE), now)
        now = completed.completed_at
        lba += size
        count += 1
    device.drain()
    return StateReport(
        method="sequential",
        io_count=count,
        bytes_written=geometry.logical_bytes,
        elapsed_usec=now - start,
        mean_io_usec=(now - start) / count if count else 0.0,
    )


# ----------------------------------------------------------------------
# memoized enforcement (snapshot/restore)
# ----------------------------------------------------------------------

@dataclass
class EnforcedState:
    """A memoized enforced device state.

    Carries the enforcement report, the snapshot every later consumer
    restores from, and the device-state fingerprint that keys run-cache
    entries.
    """

    report: StateReport
    snapshot: "DeviceSnapshot"
    fingerprint: str


class StatePool:
    """Enforce each distinct device state once; restore it thereafter.

    Enforcement is the methodology's dominant cost (Section 4.1: hours
    to weeks per real device).  The pool keys states by (device name,
    capacity, method, coverage, seed); the first :meth:`ensure` for a
    key pays for the full fill, every later call restores the snapshot —
    the same reproducible state at constant cost.

    ``max_states`` bounds the pool to that many memoized states
    (least-recently-used eviction): long multi-profile or aging
    campaigns touch many distinct states, and each holds a full device
    snapshot.  Evicted states simply re-enforce if they come back;
    :attr:`evictions` (mirrored as ``core.state_pool.evictions``)
    counts how often that safety valve fired.
    """

    def __init__(self, max_states: int | None = None) -> None:
        if max_states is not None and max_states < 1:
            raise ValueError("max_states must be >= 1 (or None for unbounded)")
        self.max_states = max_states
        self._states: "OrderedDict[tuple, EnforcedState]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._states)

    def ensure(
        self,
        device: FlashDevice,
        method: str = "random",
        coverage: float = 1.0,
        seed: int = 7,
    ) -> EnforcedState:
        """Put ``device`` into the enforced state, cheaply if possible.

        ``method`` is ``"random"`` (Section 4.1's default), ``"sequential"``
        (the faster, less stable alternative) or ``"none"`` (snapshot the
        device as-is — out-of-the-box measurements).
        """
        key = (device.name, device.geometry.logical_bytes, method, coverage, seed)
        state = self._states.get(key)
        registry = obs_metrics.current()
        if state is not None:
            self.hits += 1
            self._states.move_to_end(key)
            if registry is not None:
                registry.counter("core.state_pool.hits").inc()
            device.restore(state.snapshot)
            return state
        self.misses += 1
        if registry is not None:
            registry.counter("core.state_pool.misses").inc()
        baseline = analytic.STATS.counters() if registry is not None else None
        with obs_tracing.span(
            "enforce", cat="methodology", device=device.name, method=method
        ):
            if method == "random":
                report = enforce_random_state(device, coverage=coverage, seed=seed)
            elif method == "sequential":
                report = enforce_sequential_state(device)
            elif method == "none":
                report = StateReport(
                    method="none", io_count=0, bytes_written=0,
                    elapsed_usec=0.0, mean_io_usec=0.0,
                )
            else:
                raise ValueError(f"unknown state-enforcement method {method!r}")
            state = EnforcedState(
                report=report,
                snapshot=device.snapshot(),
                fingerprint=device.fingerprint(),
            )
        if registry is not None:
            analytic.publish_stats(registry, baseline)
        self._states[key] = state
        if self.max_states is not None:
            while len(self._states) > self.max_states:
                self._states.popitem(last=False)
                self.evictions += 1
                if registry is not None:
                    registry.counter("core.state_pool.evictions").inc()
        return state


# ----------------------------------------------------------------------
# IOCount / IOIgnore selection (Section 5.1's rules)
# ----------------------------------------------------------------------

#: scale factor between the paper's IOCounts (against 2-32 GB devices)
#: and the simulator's defaults (against scaled capacities)
DEFAULT_SCALE = 0.25


def recommended_io_count(kind: str, label: str, scale: float = DEFAULT_SCALE) -> int:
    """The paper's IOCount rule (Section 5.1), scaled.

    SSDs: 1,024 for SR/RR/SW (very small oscillations) and 5,120 for RW
    (large oscillations).  Slow/small devices (USB, IDE module, SD
    card): 512 in all cases.
    """
    if kind.upper() == "SSD":
        base = 5_120 if label == "RW" else 1_024
    else:
        base = 512
    return max(32, int(base * scale))


def recommended_io_ignore(startup: int, margin: float = 1.25) -> int:
    """IOIgnore must cover the start-up phase with some margin."""
    if startup <= 0:
        return 0
    return int(startup * margin) + 1


def run_control_for(
    startup: int, period: int | None, min_periods: int = 8, floor: int = 64
) -> tuple[int, int]:
    """Derive (io_ignore, io_count) from a phase analysis (Section 4.2):
    ignore the start-up phase, then capture enough oscillation periods
    for the running average to converge."""
    io_ignore = recommended_io_ignore(startup)
    running = max(floor, (period or 1) * min_periods)
    return io_ignore, io_ignore + running


def spec_with_run_control(spec: PatternSpec, startup: int, period: int | None) -> PatternSpec:
    """Apply :func:`run_control_for` to a pattern spec."""
    io_ignore, io_count = run_control_for(startup, period)
    return spec.with_(io_ignore=io_ignore, io_count=max(spec.io_count, io_count))
