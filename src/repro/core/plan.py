"""Benchmark plans: target-space allocation, ordering and state resets.

Section 4.2: once IOCount is set, the methodology defines *a benchmark
plan — a sequence of state resets and micro-benchmarks, where the
experiments involving sequential writes are delayed and grouped together
so that their allocated target spaces do not overlap*; a state reset is
inserted only when the accumulated sequential-write target space exceeds
the device.  (The random state is stable under reads and random writes —
only sequential writes disturb it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    SpecLike,
    run_experiment,
)
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelMixSpec,
    ParallelSpec,
    PatternSpec,
)
from repro.errors import PlanError
from repro.flashsim.device import FlashDevice
from repro.obs import tracing as obs_tracing
from repro.units import SEC


def needs_fresh_space(spec: SpecLike) -> bool:
    """Whether a spec's writes disturb the random state (sequential-
    family writes must land on a fresh target space)."""
    if isinstance(spec, PatternSpec):
        from repro.iotypes import Mode

        return spec.mode is Mode.WRITE and spec.location is not LocationKind.RANDOM
    if isinstance(spec, MixSpec):
        return needs_fresh_space(spec.primary) or needs_fresh_space(spec.secondary)
    if isinstance(spec, ParallelSpec):
        return needs_fresh_space(spec.base)
    if isinstance(spec, ParallelMixSpec):
        return any(needs_fresh_space(component) for component in spec.components)
    return False


def spec_footprint(spec: SpecLike) -> int:
    """Bytes of target space a spec consumes when freshly placed."""
    if isinstance(spec, PatternSpec):
        return spec.target_size + spec.io_shift
    if isinstance(spec, MixSpec):
        return spec_footprint(spec.primary) + spec_footprint(spec.secondary)
    if isinstance(spec, ParallelSpec):
        return spec_footprint(spec.base)
    if isinstance(spec, ParallelMixSpec):
        return sum(spec_footprint(component) for component in spec.components)
    raise PlanError(f"cannot size spec of type {type(spec).__name__}")


class TargetAllocator:
    """Bump allocator for sequential-write target spaces.

    Offsets are aligned to the device's block size so that fresh
    sequential writes start on erase-block boundaries (as the paper's
    TargetOffset placement does implicitly by using large round
    offsets).
    """

    def __init__(self, capacity: int, align: int) -> None:
        if capacity <= 0 or align <= 0:
            raise PlanError("capacity and alignment must be positive")
        self.capacity = capacity
        self.align = align
        self._cursor = 0
        self.resets = 0

    @property
    def used(self) -> int:
        """Bytes of fresh target space handed out so far."""
        return self._cursor

    def reset(self) -> None:
        """Restart the allocator after a state re-enforcement."""
        self._cursor = 0
        self.resets += 1

    def try_allocate(self, nbytes: int) -> int | None:
        """Allocate ``nbytes`` of fresh space; None when exhausted."""
        aligned = -(-nbytes // self.align) * self.align
        if aligned > self.capacity:
            raise PlanError(
                f"a single target space of {nbytes} bytes exceeds the device "
                f"capacity {self.capacity}"
            )
        if self._cursor + aligned > self.capacity:
            return None
        offset = self._cursor
        self._cursor += aligned
        return offset

    def place(self, spec: SpecLike) -> SpecLike | None:
        """Rewrite a spec's target offset onto fresh space (None when a
        state reset is needed first).  Specs that do not disturb the
        state are returned unchanged."""
        if not needs_fresh_space(spec):
            return spec
        if isinstance(spec, PatternSpec):
            offset = self.try_allocate(spec.target_size + spec.io_shift)
            if offset is None:
                return None
            return spec.with_(target_offset=offset)
        if isinstance(spec, ParallelSpec):
            offset = self.try_allocate(spec.base.target_size + spec.base.io_shift)
            if offset is None:
                return None
            return ParallelSpec(
                base=spec.base.with_(target_offset=offset),
                parallel_degree=spec.parallel_degree,
            )
        if isinstance(spec, MixSpec):
            primary, secondary = spec.primary, spec.secondary
            if needs_fresh_space(primary):
                offset = self.try_allocate(primary.target_size + primary.io_shift)
                if offset is None:
                    return None
                primary = primary.with_(target_offset=offset)
            if needs_fresh_space(secondary):
                offset = self.try_allocate(secondary.target_size + secondary.io_shift)
                if offset is None:
                    return None
                secondary = secondary.with_(target_offset=offset)
            return MixSpec(
                primary=primary,
                secondary=secondary,
                ratio=spec.ratio,
                io_count=spec.io_count,
                io_ignore=spec.io_ignore,
            )
        raise PlanError(f"cannot place spec of type {type(spec).__name__}")


def _spec_io_count(spec: SpecLike) -> int:
    """Total IOs a spec issues when executed once."""
    if isinstance(spec, PatternSpec):
        return spec.io_count
    if isinstance(spec, MixSpec):
        return spec.io_count
    if isinstance(spec, ParallelSpec):
        return sum(process.io_count for process in spec.process_specs())
    if isinstance(spec, ParallelMixSpec):
        return sum(component.io_count for component in spec.components)
    raise PlanError(f"cannot size spec of type {type(spec).__name__}")


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted budget of a benchmark plan."""

    experiments: int
    runs: int
    ios: int
    fresh_target_bytes: int
    resets: int
    simulated_usec: float

    def summary(self) -> str:
        """One-line description of the predicted budget."""
        from repro.units import SEC, fmt_size

        return (
            f"{self.experiments} experiments, {self.runs} runs, "
            f"{self.ios} IOs, {fmt_size(self.fresh_target_bytes)} fresh "
            f"target space, {self.resets} reset(s), "
            f"~{self.simulated_usec / SEC:.0f}s simulated"
        )


@dataclass(frozen=True)
class StateReset:
    """Plan step: re-enforce the device state."""

    reason: str = "sequential-write target space exhausted"


PlanStep = Union[StateReset, Experiment]


@dataclass
class BenchmarkPlan:
    """An ordered sequence of experiments and state resets."""

    capacity: int
    align: int
    steps: list[PlanStep] = field(default_factory=list)

    @staticmethod
    def build(
        experiments: list[Experiment],
        capacity: int,
        align: int,
        repetitions: int = 1,
    ) -> "BenchmarkPlan":
        """Order experiments per the methodology: state-preserving
        experiments first, sequential-write experiments delayed and
        grouped, with state resets inserted when the accumulated
        sequential-write footprint would exceed the device."""
        preserving: list[Experiment] = []
        disturbing: list[tuple[Experiment, int]] = []
        for experiment in experiments:
            footprint = 0
            disturbs = False
            for value in experiment.values:
                spec = experiment.spec_for(value)
                if needs_fresh_space(spec):
                    disturbs = True
                    footprint += spec_footprint(spec) * repetitions
            if disturbs:
                disturbing.append((experiment, footprint))
            else:
                preserving.append(experiment)

        plan = BenchmarkPlan(capacity=capacity, align=align)
        plan.steps.extend(preserving)
        accumulated = 0
        for experiment, footprint in disturbing:
            if accumulated + footprint > capacity and accumulated > 0:
                plan.steps.append(StateReset())
                accumulated = 0
            plan.steps.append(experiment)
            accumulated += footprint
        return plan

    @property
    def reset_count(self) -> int:
        """Number of state resets the plan schedules."""
        return sum(1 for step in self.steps if isinstance(step, StateReset))

    def estimate(
        self,
        per_io_usec: float = 2_000.0,
        reset_usec: float = 0.0,
        repetitions: int = 1,
        pause_usec: float = 0.0,
    ) -> "PlanEstimate":
        """Predict the plan's cost before running it (Section 6 asks for
        (semi-)automatic plan generation; knowing a plan's budget is the
        first half of choosing between candidate plans).

        ``per_io_usec`` is a pessimistic per-IO cost (default 2 ms — a
        mid-range random write); ``reset_usec`` the cost of one state
        re-enforcement.  Estimates are upper-bound flavoured: real runs
        mix cheap reads in.
        """
        total_ios = 0
        total_runs = 0
        fresh_bytes = 0
        for step in self.steps:
            if isinstance(step, StateReset):
                continue
            for value in step.values:
                spec = step.spec_for(value)
                total_ios += _spec_io_count(spec) * repetitions
                total_runs += repetitions
                if needs_fresh_space(spec):
                    fresh_bytes += spec_footprint(spec) * repetitions
        simulated = (
            total_ios * per_io_usec
            + self.reset_count * reset_usec
            + total_runs * pause_usec
        )
        return PlanEstimate(
            experiments=sum(
                1 for step in self.steps if not isinstance(step, StateReset)
            ),
            runs=total_runs,
            ios=total_ios,
            fresh_target_bytes=fresh_bytes,
            resets=self.reset_count,
            simulated_usec=simulated,
        )

    def execute(
        self,
        device: FlashDevice,
        enforce_state: Callable[[FlashDevice], object],
        pause_usec: float = 1.0 * SEC,
        repetitions: int = 1,
    ) -> dict[str, ExperimentResult]:
        """Run the plan: enforce the state once up front and snapshot
        it; each scheduled reset (and the runtime guard that fires when
        the allocator runs dry mid-experiment) *restores* the snapshot
        instead of re-paying for a whole-device fill."""
        enforce_state(device)
        baseline = device.snapshot()
        allocator = TargetAllocator(self.capacity, self.align)
        results: dict[str, ExperimentResult] = {}

        def reset_state() -> None:
            device.restore(baseline)
            allocator.reset()

        def allocate(spec: SpecLike) -> SpecLike:
            placed = allocator.place(spec)
            if placed is None:
                reset_state()
                placed = allocator.place(spec)
                if placed is None:
                    raise PlanError("spec does not fit even on a fresh device")
            return placed

        for step in self.steps:
            if isinstance(step, StateReset):
                with obs_tracing.span("state-reset", cat="plan"):
                    reset_state()
                continue
            with obs_tracing.span("experiment", cat="plan", experiment=step.name):
                results[step.name] = run_experiment(
                    device,
                    step,
                    pause_usec=pause_usec,
                    repetitions=repetitions,
                    allocate=allocate,
                )
        return results
