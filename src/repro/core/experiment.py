"""Experiments: collections of runs with a single varying parameter.

Design principle 1 (Section 3.2): *to enable sound analysis, each
experiment is designed around a single varying parameter.*  An
:class:`Experiment` names that parameter, lists its values and knows how
to build the pattern for each value.  Running it yields one
:class:`ExperimentRow` per value, optionally averaged over repetitions
(the paper ran everything three times and found differences within 5%;
the simulator is deterministic per seed, so repetitions re-seed the
random patterns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Union

from repro.core.engine import Engine, reseed, rest_device
from repro.core.patterns import MixSpec, ParallelMixSpec, ParallelSpec, PatternSpec
from repro.core.stats import RunStats, relative_difference
from repro.errors import ExperimentError
from repro.flashsim.device import FlashDevice
from repro.flashsim.trace import IOTrace
from repro.units import SEC

SpecLike = Union[PatternSpec, MixSpec, ParallelSpec, ParallelMixSpec]
SpecBuilder = Callable[[Any], SpecLike]


@dataclass(frozen=True)
class Experiment:
    """One varying parameter over one reference pattern."""

    name: str
    parameter: str
    values: tuple
    build: SpecBuilder

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError(f"experiment {self.name!r} has no parameter values")

    def spec_for(self, value: Any) -> SpecLike:
        """The pattern spec this experiment runs for ``value``."""
        return self.build(value)


@dataclass
class ExperimentRow:
    """Result for one parameter value: per-repetition stats + average.

    ``traces`` holds the per-repetition IO traces when the experiment
    was run with ``keep_traces=True`` (empty otherwise — traces are
    large, so keeping them is opt-in).
    """

    value: Any
    label: str
    stats: list[RunStats] = field(default_factory=list)
    extra: dict[str, float] = field(default_factory=dict)
    traces: list[IOTrace] = field(default_factory=list)

    def _require_stats(self) -> None:
        if not self.stats:
            raise ExperimentError(
                f"experiment row for value {self.value!r} ({self.label or 'no label'}) "
                "has no recorded runs"
            )

    @property
    def mean_usec(self) -> float:
        """Mean response time averaged over the repetitions (us)."""
        self._require_stats()
        return sum(s.mean_usec for s in self.stats) / len(self.stats)

    @property
    def mean_msec(self) -> float:
        """Mean response time in milliseconds (the figures' unit)."""
        return self.mean_usec / 1000.0

    @property
    def max_usec(self) -> float:
        """Worst response time seen across the repetitions (us)."""
        self._require_stats()
        return max(s.max_usec for s in self.stats)

    def repeatable_within(self, tolerance: float = 0.05) -> bool:
        """Whether repetitions agree within ``tolerance`` (paper: 5%)."""
        means = [s.mean_usec for s in self.stats]
        return all(
            relative_difference(means[0], other) <= tolerance for other in means[1:]
        )


@dataclass
class ExperimentResult:
    """All rows of one executed experiment."""

    experiment: Experiment
    rows: list[ExperimentRow] = field(default_factory=list)

    def series(self) -> tuple[list, list[float]]:
        """(values, mean response times in ms) — a figure's data series."""
        return (
            [row.value for row in self.rows],
            [row.mean_msec for row in self.rows],
        )

    def row_for(self, value: Any) -> ExperimentRow:
        """The result row for one parameter value."""
        for row in self.rows:
            if row.value == value:
                return row
        raise ExperimentError(
            f"experiment {self.experiment.name!r} has no row for value {value!r}"
        )


def _reseed(spec: SpecLike, bump: int) -> SpecLike:
    """A copy of the spec with shifted random seeds for a repetition.

    Delegates to the engine's reseeder registry, which covers every
    registered spec kind (including :class:`ParallelMixSpec`, which the
    former isinstance ladder mishandled).
    """
    return reseed(spec, bump)


def execute_spec(device: FlashDevice, spec: SpecLike):
    """Dispatch a spec to the right executor; returns the run object.

    A thin front over :meth:`Engine.run`: dispatch is by the engine's
    executor registry, so every registered spec kind — including
    :class:`ParallelMixSpec` — executes without this module knowing
    about it.
    """
    return Engine(device).run(spec)


def _trace_iops(trace: IOTrace) -> float:
    """Simulated IOPS of one run: IO count over the trace makespan.

    The makespan runs from the first submission to the last completion,
    so overlapped (queued) IOs raise the rate while a synchronous run
    reproduces ``1e6 / mean_response`` exactly.
    """
    n = len(trace)
    if n == 0:
        return 0.0
    submitted = trace.column("submitted_at")
    completed = trace.column("completed_at")
    makespan = float(completed.max() - submitted.min())
    if makespan <= 0.0:
        return 0.0
    return n / makespan * 1e6


def run_experiment(
    device: FlashDevice,
    experiment: Experiment,
    pause_usec: float = 1.0 * SEC,
    repetitions: int = 1,
    allocate: Callable[[SpecLike], SpecLike] | None = None,
    keep_traces: bool = False,
) -> ExperimentResult:
    """Run every value of an experiment against a live device.

    ``pause_usec`` is the methodology's inter-run pause (Section 4.3) so
    one run's deferred reclamation cannot pollute the next run's
    measurements.  ``allocate`` optionally rewrites target offsets (a
    :class:`~repro.core.plan.TargetAllocator` bound method) so
    sequential-write runs land on fresh space.  ``keep_traces`` stores
    each repetition's per-IO trace on its :class:`ExperimentRow`
    (Section 4.2's dense traces, needed for phase re-analysis).
    """
    if repetitions < 1:
        raise ExperimentError("repetitions must be >= 1")
    result = ExperimentResult(experiment=experiment)
    for value in experiment.values:
        base_spec = experiment.spec_for(value)
        row = ExperimentRow(value=value, label=getattr(base_spec, "label", ""))
        iops_samples: list[float] = []
        for repetition in range(repetitions):
            spec = _reseed(base_spec, repetition)
            if allocate is not None:
                spec = allocate(spec)
            run = execute_spec(device, spec)
            row.stats.append(run.stats)
            trace = getattr(run, "trace", None)
            if trace is not None:
                iops_samples.append(_trace_iops(trace))
                if keep_traces:
                    row.traces.append(trace)
            rest_device(device, pause_usec)
        if iops_samples:
            row.extra["sim_iops"] = sum(iops_samples) / len(iops_samples)
        result.rows.append(row)
    return result
