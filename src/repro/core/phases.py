"""The two-phase response-time model (Section 4.2, Figures 3 and 4).

Flash devices show a **start-up phase** — a prefix of uniformly cheap
IOs while deferred work (buffering, lazy garbage collection) absorbs
writes for free — followed by a **running phase** where response times
oscillate between two or more levels (cheap page writes vs. writes that
trigger reclamation and erases).

This module detects both phases from a response-time trace:

* the start-up boundary is the first IO whose response time crosses the
  log-scale midpoint between the cheap and the expensive levels;
* the oscillation period is the median gap between expensive IOs.

These drive the methodology's choice of ``IOIgnore`` (cover the
start-up) and ``IOCount`` (cover enough periods to converge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.patterns import PatternSpec
from repro.core.runner import execute
from repro.errors import AnalysisError
from repro.flashsim.device import FlashDevice


@dataclass(frozen=True)
class PhaseAnalysis:
    """Result of analysing one trace with the two-phase model."""

    startup: int
    period: int | None
    threshold_usec: float
    cheap_level_usec: float
    expensive_level_usec: float
    expensive_fraction: float

    @property
    def has_startup(self) -> bool:
        """Whether a start-up phase was detected at all."""
        return self.startup > 0

    @property
    def oscillates(self) -> bool:
        """Whether a running-phase oscillation period was found."""
        return self.period is not None

    def summary(self) -> str:
        """One-line description of the detected phases."""
        period = f"{self.period}" if self.period is not None else "-"
        return (
            f"startup={self.startup} period={period} "
            f"cheap={self.cheap_level_usec / 1000:.2f}ms "
            f"expensive={self.expensive_level_usec / 1000:.2f}ms"
        )


def detect_phases(response_usec: Sequence[float], min_spread: float = 3.0) -> PhaseAnalysis:
    """Analyse a trace with the two-phase model.

    ``min_spread`` is the cheap-vs-expensive ratio below which the trace
    is considered un-phased (uniform response times: no start-up, no
    oscillation) — reads and sequential writes on most devices.
    """
    values = np.asarray(response_usec, dtype=float)
    if values.size < 16:
        raise AnalysisError("phase detection needs at least 16 measurements")
    if (values <= 0).any():
        raise AnalysisError("response times must be positive")
    cheap = float(np.percentile(values, 10))
    expensive = float(np.percentile(values, 95))
    if expensive / cheap < min_spread:
        # Long-period oscillations (Figure 4: one bookkeeping burst per
        # ~128 IOs) hide above the 95th percentile; fall back to the
        # peak level if several distinct spikes exist.
        peak = float(values.max())
        spikes = int((values > np.sqrt(cheap * peak)).sum()) if peak > 0 else 0
        if peak / cheap >= 2 * min_spread and spikes >= 3:
            expensive = peak
        else:
            return PhaseAnalysis(
                startup=0,
                period=None,
                threshold_usec=float(np.median(values)),
                cheap_level_usec=cheap,
                expensive_level_usec=expensive,
                expensive_fraction=0.0,
            )
    # log-scale midpoint between the two levels (the figures are drawn
    # in log scale for the same reason)
    threshold = float(np.sqrt(cheap * expensive))
    is_expensive = values > threshold
    expensive_indexes = np.flatnonzero(is_expensive)
    startup = int(expensive_indexes[0]) if expensive_indexes.size else 0
    # A trace that starts oscillating immediately has no start-up phase;
    # require the cheap prefix to be non-trivial.
    if startup < 8:
        startup = 0
    period: int | None = None
    running = expensive_indexes[expensive_indexes >= startup]
    if running.size >= 3:
        gaps = np.diff(running)
        period = max(1, int(np.median(gaps)))
    if period is not None and startup <= 1.5 * period:
        # a cheap prefix no longer than the oscillation's own cycle is
        # just the first period, not a start-up phase (Figure 4)
        startup = 0
    return PhaseAnalysis(
        startup=startup,
        period=period,
        threshold_usec=threshold,
        cheap_level_usec=cheap,
        expensive_level_usec=expensive,
        expensive_fraction=float(is_expensive.mean()),
    )


@dataclass(frozen=True)
class PhaseProfile:
    """Per-baseline phase analyses for one device, plus the derived
    upper bounds the methodology uses (Section 4.2)."""

    analyses: dict[str, PhaseAnalysis]

    @property
    def startup_bound(self) -> int:
        """Upper bound of the start-up phase across the baselines."""
        return max(analysis.startup for analysis in self.analyses.values())

    @property
    def period_bound(self) -> int | None:
        """Upper bound of the oscillation period across the baselines."""
        periods = [
            analysis.period
            for analysis in self.analyses.values()
            if analysis.period is not None
        ]
        return max(periods) if periods else None

    def startup_for(self, label: str) -> int:
        """Start-up length of one baseline (0 if not measured)."""
        return self.analyses[label].startup if label in self.analyses else 0


def measure_phases(
    device: FlashDevice,
    baseline_specs: dict[str, PatternSpec],
    io_count: int | None = None,
) -> PhaseProfile:
    """Run the four baselines with a large IOCount and analyse phases.

    ``io_count`` overrides each spec's length (the methodology runs
    "very large" counts here; callers pass something several times the
    expected start-up).
    """
    from repro.obs import tracing as obs_tracing

    analyses: dict[str, PhaseAnalysis] = {}
    for label, spec in baseline_specs.items():
        run_spec = spec if io_count is None else spec.with_(io_count=io_count)
        with obs_tracing.span("phase-baseline", cat="phases", label=label):
            run = execute(device, run_spec)
            analyses[label] = detect_phases(run.trace.response_times())
    return PhaseProfile(analyses=analyses)
