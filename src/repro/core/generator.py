"""Pattern generators: specs -> feedback-driven IO request streams.

The submit time of IO ``i`` depends on the *response time* of IO
``i-1`` (Table 1: ``t(IOi) = t(IOi-1) + rt(IOi-1) [+ pauses]``), so a
pattern cannot be fully materialised up front — the generator consumes
each completion to schedule the next request.  The generators implement
the :data:`~repro.flashsim.host.RequestFeed` protocol used by the host
models.
"""

from __future__ import annotations

import random

from repro.core.patterns import LocationKind, MixSpec, PatternSpec
from repro.iotypes import CompletedIO, IORequest


class PatternGenerator:
    """Generates the requests of one basic pattern.

    Instances are single-use: one generator drives one run.
    """

    def __init__(self, spec: PatternSpec, start_at: float = 0.0) -> None:
        self.spec = spec
        self.start_at = start_at
        self._index = 0
        self._rng = random.Random(spec.seed)

    def __call__(self, previous: CompletedIO | None) -> IORequest | None:
        spec = self.spec
        if self._index >= spec.io_count:
            return None
        index = self._index
        self._index += 1
        if previous is None:
            scheduled = self.start_at
        else:
            scheduled = previous.completed_at + spec.inter_io_gap(index)
        draw = None
        if spec.location is LocationKind.RANDOM:
            draw = self._rng.randrange(spec.slots)
        return IORequest(
            index=index,
            lba=spec.lba(index, draw),
            size=spec.io_size,
            mode=spec.mode,
            scheduled_at=scheduled,
        )

    @property
    def issued(self) -> int:
        """Requests produced so far."""
        return self._index


class MixGenerator:
    """Interleaves two basic patterns with a Ratio (Mix micro-benchmark).

    Component generators keep independent indexes into their own
    patterns; the mix-level index decides whose turn it is.  The mix's
    timing is consecutive (component pauses would make the Ratio
    parameter no longer the single varying factor).
    """

    def __init__(self, spec: MixSpec, start_at: float = 0.0) -> None:
        self.spec = spec
        self.start_at = start_at
        self._index = 0
        self._component_index = [0, 0]
        self._rngs = [
            random.Random(spec.primary.seed),
            random.Random(spec.secondary.seed),
        ]
        self._components = (spec.primary, spec.secondary)
        #: which component produced each issued IO, in order (the runner
        #: splits statistics per component with this)
        self.component_log: list[int] = []

    def __call__(self, previous: CompletedIO | None) -> IORequest | None:
        if self._index >= self.spec.io_count:
            return None
        which = self.spec.component_for(self._index)
        component = self._components[which]
        inner_index = self._component_index[which] % component.io_count
        self._component_index[which] += 1
        draw = None
        if component.location is LocationKind.RANDOM:
            draw = self._rngs[which].randrange(component.slots)
        scheduled = self.start_at if previous is None else previous.completed_at
        request = IORequest(
            index=self._index,
            lba=component.lba(inner_index, draw),
            size=component.io_size,
            mode=component.mode,
            scheduled_at=scheduled,
        )
        self.component_log.append(which)
        self._index += 1
        return request
