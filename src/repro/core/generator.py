"""Pattern generators: specs -> feedback-driven IO request streams.

The submit time of IO ``i`` depends on the *response time* of IO
``i-1`` (Table 1: ``t(IOi) = t(IOi-1) + rt(IOi-1) [+ pauses]``), so a
pattern cannot be fully materialised up front — the feedback step is
irreducibly per-IO.  Everything *else* is not: the random slot draws,
the LBA formula and the inter-IO gaps depend only on the index, so the
generators pre-draw the whole run in one batch at construction and
expose the result as an :class:`IOProgram` of columns.  The hosts'
program runners consume those columns directly; the legacy per-request
protocol (:data:`~repro.flashsim.host.RequestFeed`) keeps working on
top of the same precomputed values, so both paths see identical IOs.

The RNG is ``random.Random(seed)`` exactly as before — pre-drawing
consumes the same stream in the same order, so every simulated
measurement is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.patterns import LocationKind, MixSpec, PatternSpec
from repro.iotypes import CompletedIO, IORequest, Mode


@dataclass(frozen=True)
class IOProgram:
    """The precomputable columns of one run, index-aligned.

    ``lbas``/``sizes`` are int64, ``writes`` bool, ``gaps`` float64 (the
    pause inserted before each IO, after the previous completion);
    ``components`` is the issuing mix component per IO (int8) or
    ``None`` for basic patterns.  ``queue_depth`` carries the spec's
    requested in-flight depth to the host (1 = synchronous).  Submit
    times are *not* here — they depend on measured response times and
    are computed by the host loop.
    """

    lbas: np.ndarray
    sizes: np.ndarray
    writes: np.ndarray
    gaps: np.ndarray
    components: np.ndarray | None = None
    queue_depth: int = 1

    def __len__(self) -> int:
        return len(self.lbas)


def _pre_draw(seed: int, slots: int, count: int) -> list[int]:
    """The first ``count`` values of the spec's random-slot stream."""
    rng = random.Random(seed)
    return [rng.randrange(slots) for _ in range(count)]


class PatternGenerator:
    """Generates the requests of one basic pattern.

    Instances are single-use: one generator drives one run.
    """

    def __init__(self, spec: PatternSpec, start_at: float = 0.0) -> None:
        self.spec = spec
        self.start_at = start_at
        self._index = 0
        count = spec.io_count
        draws = None
        if spec.location is LocationKind.RANDOM:
            draws = np.array(
                _pre_draw(spec.seed, spec.slots, count), dtype=np.int64
            )
        lbas = spec.lba_array(np.arange(count, dtype=np.int64), draws)
        self._program = IOProgram(
            lbas=lbas,
            sizes=np.full(count, spec.io_size, dtype=np.int64),
            writes=np.full(count, spec.mode is Mode.WRITE, dtype=np.bool_),
            gaps=spec.gap_array(count),
            queue_depth=spec.queue_depth,
        )
        self._lbas = lbas.tolist()
        self._gaps = self._program.gaps.tolist()

    def program(self) -> IOProgram:
        """The precomputed columns of the whole run."""
        return self._program

    def __call__(self, previous: CompletedIO | None) -> IORequest | None:
        spec = self.spec
        if self._index >= spec.io_count:
            return None
        index = self._index
        self._index += 1
        if previous is None:
            scheduled = self.start_at
        else:
            scheduled = previous.completed_at + self._gaps[index]
        return IORequest(
            index=index,
            lba=self._lbas[index],
            size=spec.io_size,
            mode=spec.mode,
            scheduled_at=scheduled,
        )

    @property
    def issued(self) -> int:
        """Requests produced so far."""
        return self._index


class MixGenerator:
    """Interleaves two basic patterns with a Ratio (Mix micro-benchmark).

    The component schedule (whose turn each mix index is), the
    per-component inner indexes and the random draws are all precomputed
    at construction; the mix's timing is consecutive (component pauses
    would make the Ratio parameter no longer the single varying factor).
    """

    def __init__(self, spec: MixSpec, start_at: float = 0.0) -> None:
        self.spec = spec
        self.start_at = start_at
        self._index = 0
        count = spec.io_count
        indexes = np.arange(count, dtype=np.int64)
        which = (indexes % (spec.ratio + 1) == spec.ratio).astype(np.int8)
        lbas = np.empty(count, dtype=np.int64)
        sizes = np.empty(count, dtype=np.int64)
        writes = np.empty(count, dtype=np.bool_)
        for side, component in enumerate((spec.primary, spec.secondary)):
            mask = which == side
            occurrences = int(mask.sum())
            inner = (
                np.arange(occurrences, dtype=np.int64) % component.io_count
            )
            draws = None
            if component.location is LocationKind.RANDOM:
                # one draw per occurrence, wrap or not — exactly the
                # stream the per-request path consumed lazily
                draws = np.array(
                    _pre_draw(component.seed, component.slots, occurrences),
                    dtype=np.int64,
                )
            lbas[mask] = component.lba_array(inner, draws)
            sizes[mask] = component.io_size
            writes[mask] = component.mode is Mode.WRITE
        self._program = IOProgram(
            lbas=lbas,
            sizes=sizes,
            writes=writes,
            gaps=np.zeros(count, dtype=np.float64),
            components=which,
            queue_depth=spec.queue_depth,
        )
        self._lbas = lbas.tolist()
        self._sizes = sizes.tolist()
        self._modes = [
            Mode.WRITE if write else Mode.READ for write in writes.tolist()
        ]
        self._which = which.tolist()
        #: which component produced each issued IO, in order (the runner
        #: splits statistics per component with this)
        self.component_log: list[int] = []

    def program(self) -> IOProgram:
        """The precomputed columns of the whole mix run."""
        return self._program

    @property
    def components_array(self) -> np.ndarray:
        """Issuing component per mix index (0=primary, 1=secondary),
        for the entire run regardless of how many IOs were issued."""
        assert self._program.components is not None
        return self._program.components

    def __call__(self, previous: CompletedIO | None) -> IORequest | None:
        if self._index >= self.spec.io_count:
            return None
        index = self._index
        self._index += 1
        scheduled = self.start_at if previous is None else previous.completed_at
        request = IORequest(
            index=index,
            lba=self._lbas[index],
            size=self._sizes[index],
            mode=self._modes[index],
            scheduled_at=scheduled,
        )
        self.component_log.append(self._which[index])
        return request
