"""Parallel campaign execution with snapshot restore and memoization.

A campaign decomposes into independent *cells* — one (device profile,
experiment) pair each.  Cells share nothing but the enforced initial
state, which the executor builds **once per profile**, snapshots, and
hands to every cell; each cell restores the snapshot onto its own
device and runs with its own target-space allocator.  Because the
simulator is deterministic, the same cell always produces the same
measurements — which buys two things:

* **parallelism** — cells fan out across worker processes
  (``jobs > 1``) and the results are bit-identical to running them
  sequentially (``jobs == 1`` uses the identical per-cell code path,
  inline);
* **memoization** — a :class:`RunCache` stores finished cells on disk
  keyed by (profile, state fingerprint, spec); a repeated campaign
  re-runs zero already-measured cells.

Cells are described by picklable primitives only: experiments hold
pattern-builder closures that cannot cross a process boundary, so
workers rebuild them from the micro-benchmark registry
(:func:`~repro.core.microbench.build_microbenchmark`).  Results travel
as the archive's JSON payloads, which round-trip floats exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.archive import (
    payload_has_attribution,
    payload_has_traces,
    result_from_payload,
    result_to_payload,
)
from repro.core.experiment import Experiment, ExperimentResult, run_experiment
from repro.core.methodology import StatePool
from repro.core.microbench import BenchContext, build_microbenchmark
from repro.core.plan import TargetAllocator
from repro.errors import ExperimentError, PlanError
from repro.flashsim.profiles import build_device, get_profile
from repro.flashsim.snapshot import DeviceSnapshot
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsSnapshot, diff_counts
from repro.units import SEC

CACHE_VERSION = 1


@dataclass(frozen=True)
class Observe:
    """Which observability channels worker processes should record.

    The executor derives this from the globals installed in the parent
    process; it must travel explicitly because a ``fork``-started worker
    *inherits* the parent's installed tracer/registry objects — recording
    into those copies would silently lose everything, so workers shadow
    them with fresh instances (or ``None``) based on these flags.

    ``traces`` asks the cell to keep and return its per-IO traces
    (columnar payloads inside the result) rather than statistics only.
    ``attribution`` additionally attaches a flight recorder to the cell
    device so every trace carries per-IO latency-attribution columns
    (implies ``traces``).
    """

    metrics: bool = False
    tracing: bool = False
    traces: bool = False
    attribution: bool = False


#: the default: no observability channels recorded
OBSERVE_NOTHING = Observe()


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work, in picklable primitives."""

    profile: str
    capacity: int | None
    benchmark: str
    experiment: str
    io_size: int
    io_count: int
    io_ignore: int = 0
    seed: int = 42
    repetitions: int = 1
    pause_usec: float = 1.0 * SEC


@dataclass
class CellOutcome:
    """One executed (or cache-served) cell."""

    cell: CampaignCell
    payload: dict
    cached: bool = False
    #: per-cell device-counter delta (``None`` when metrics were off both
    #: when the cell ran and when its cache entry was written)
    metrics: dict | None = None
    #: host wall-clock time the cell took to execute (0 for cache hits)
    wall_usec: float = 0.0

    def result(self) -> ExperimentResult:
        """The cell's measurements as an :class:`ExperimentResult`."""
        return result_from_payload(self.cell.experiment, self.payload)


def plan_cells(
    profile: str,
    capacity: int | None,
    benchmarks: Sequence[str],
    *,
    io_size: int,
    io_count: int,
    io_ignore: int = 0,
    seed: int = 42,
    repetitions: int = 1,
    pause_usec: float = 1.0 * SEC,
) -> list[CampaignCell]:
    """Enumerate one profile's campaign as cells, one per experiment."""
    resolved = capacity if capacity is not None else get_profile(profile).sim_logical_bytes
    context = BenchContext(
        capacity=resolved,
        io_size=io_size,
        io_count=io_count,
        io_ignore=io_ignore,
        seed=seed,
    )
    cells = []
    for name in benchmarks:
        for experiment in build_microbenchmark(name, context).experiments:
            cells.append(
                CampaignCell(
                    profile=profile,
                    capacity=capacity,
                    benchmark=name,
                    experiment=experiment.name,
                    io_size=io_size,
                    io_count=io_count,
                    io_ignore=io_ignore,
                    seed=seed,
                    repetitions=repetitions,
                    pause_usec=pause_usec,
                )
            )
    return cells


def _cell_experiment(cell: CampaignCell, capacity: int) -> Experiment:
    """Rebuild a cell's experiment from the micro-benchmark registry."""
    context = BenchContext(
        capacity=capacity,
        io_size=cell.io_size,
        io_count=cell.io_count,
        io_ignore=cell.io_ignore,
        seed=cell.seed,
    )
    for experiment in build_microbenchmark(cell.benchmark, context).experiments:
        if experiment.name == cell.experiment:
            return experiment
    raise ExperimentError(
        f"micro-benchmark {cell.benchmark!r} has no experiment {cell.experiment!r}"
    )


def _run_cell_body(
    cell: CampaignCell,
    snapshot: DeviceSnapshot,
    keep_traces: bool = False,
    attribution: bool = False,
) -> dict:
    """Execute one cell; returns an envelope of payload + observability.

    The single per-cell code path: the sequential executor calls it
    inline (under the parent's installed tracer/registry, if any),
    worker processes call it via :func:`_execute_cell_remote` under
    their own.  Determinism makes the two executions bit-identical.

    The envelope maps ``payload`` (the measurements, with columnar
    per-IO traces included when ``keep_traces``), ``metrics`` (the
    cell's device-counter delta, ``None`` when metrics are off) and
    ``wall_usec`` (host wall-clock execution time).
    """
    registry = obs_metrics.current()
    wall_start = time.perf_counter()
    with obs_tracing.span(
        "cell", cat="executor", profile=cell.profile, experiment=cell.experiment
    ):
        device = build_device(cell.profile, logical_bytes=cell.capacity)
        device.restore(snapshot)
        if attribution:
            from repro.flashsim.recorder import FlightRecorder

            device.attach_recorder(FlightRecorder())
        before = device.metrics() if registry is not None else None
        experiment = _cell_experiment(cell, device.capacity)
        allocator = TargetAllocator(device.capacity, device.geometry.block_size)

        def allocate(spec):
            placed = allocator.place(spec)
            if placed is None:
                # runtime guard, mirroring BenchmarkPlan.execute: restore
                # the enforced state and restart the target space
                device.restore(snapshot)
                allocator.reset()
                placed = allocator.place(spec)
                if placed is None:
                    raise PlanError("spec does not fit even on a fresh device")
            return placed

        result = run_experiment(
            device,
            experiment,
            pause_usec=cell.pause_usec,
            repetitions=cell.repetitions,
            allocate=allocate,
            keep_traces=keep_traces,
        )
    envelope = {
        "payload": result_to_payload(result, include_traces=keep_traces),
        "metrics": None,
        "wall_usec": (time.perf_counter() - wall_start) * 1e6,
    }
    if registry is not None:
        envelope["metrics"] = diff_counts(device.metrics(), before)
        registry.counter("core.executor.cells_executed").inc()
    return envelope


def run_cell(cell: CampaignCell, snapshot: DeviceSnapshot) -> dict:
    """Execute one cell from a restored snapshot; returns the payload.

    Compatibility front over :func:`_run_cell_body` for callers that
    only want the measurements.
    """
    return _run_cell_body(cell, snapshot)["payload"]


def _execute_cell_remote(
    cell: CampaignCell, snapshot: DeviceSnapshot, observe: Observe
) -> dict:
    """Worker-process entry point for one cell.

    Always shadows the process-global tracer/registry: under the
    ``fork`` start method the worker inherits the parent's installed
    objects, and spans or counts recorded into those copies would be
    lost.  Fresh instances are installed when the parent observes the
    matching channel; their contents travel home in the envelope
    (``spans`` as picklable payload tuples, ``registry`` as a
    :class:`MetricsSnapshot`) for the parent to absorb.
    """
    tracer = obs_tracing.Tracer() if observe.tracing else None
    registry = obs_metrics.MetricsRegistry() if observe.metrics else None
    with obs_tracing.installed(tracer), obs_metrics.installed(registry):
        envelope = _run_cell_body(
            cell,
            snapshot,
            keep_traces=observe.traces,
            attribution=observe.attribution,
        )
    envelope["spans"] = (
        [span.to_payload() for span in tracer.spans] if tracer is not None else []
    )
    envelope["registry"] = registry.snapshot() if registry is not None else None
    return envelope


# ----------------------------------------------------------------------
# run cache
# ----------------------------------------------------------------------

class RunCache:
    """On-disk memo of executed cells.

    Keys combine the cell description, the *spec digest* (the reprs of
    the actual pattern specs the experiment will run — so a code change
    that alters patterns invalidates entries) and the device-state
    fingerprint.  Entries are JSON files; floats round-trip exactly, so
    a cache hit returns the same numbers the run produced.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: simulated IO volume the hits avoided re-measuring
        self.bytes_saved = 0
        #: pickle bytes the columnar trace format saved over the legacy
        #: object-graph format, summed over entries stored with traces
        self.trace_bytes_saved = 0

    @staticmethod
    def key(cell: CampaignCell, fingerprint: str, spec_digest: str) -> str:
        """Cache key of one cell under one device state."""
        blob = json.dumps(
            {
                "version": CACHE_VERSION,
                "cell": dataclasses.asdict(cell),
                "fingerprint": fingerprint,
                "specs": spec_digest,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    @staticmethod
    def spec_digest(cell: CampaignCell, capacity: int) -> str:
        """Hash of every spec the cell will execute."""
        experiment = _cell_experiment(cell, capacity)
        hasher = hashlib.sha256()
        hasher.update(experiment.name.encode())
        hasher.update(experiment.parameter.encode())
        for value in experiment.values:
            hasher.update(repr(value).encode())
            hasher.update(repr(experiment.spec_for(value)).encode())
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get_entry(
        self,
        key: str,
        cell: CampaignCell | None = None,
        require_traces: bool = False,
        require_attribution: bool = False,
    ) -> dict | None:
        """The whole memoized entry for ``key``, or None on a miss.

        Passing the ``cell`` lets the cache credit its bytes-saved
        account on a hit: every hit avoids re-simulating the cell's IO
        volume (io_count x io_size per repetition).  With
        ``require_traces``, an entry stored without per-IO traces does
        not satisfy a trace-keeping campaign and counts as a miss;
        ``require_attribution`` further requires the traces to carry
        latency-attribution columns.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        if require_traces and not payload_has_traces(entry.get("payload", {})):
            self.misses += 1
            return None
        if require_attribution and not payload_has_attribution(
            entry.get("payload", {})
        ):
            self.misses += 1
            return None
        self.hits += 1
        if cell is not None:
            self.bytes_saved += cell.io_count * cell.io_size * max(1, cell.repetitions)
        return entry

    def get(self, key: str) -> dict | None:
        """The memoized payload for ``key``, or None on a miss."""
        entry = self.get_entry(key)
        return entry["payload"] if entry is not None else None

    def put(
        self,
        key: str,
        cell: CampaignCell,
        payload: dict,
        metrics: dict | None = None,
        wall_usec: float = 0.0,
    ) -> Path:
        """Store one executed cell's payload (and observability) under ``key``.

        When the payload carries per-IO traces, the entry additionally
        records how many pickle bytes the columnar format saved over the
        legacy object-graph format (``trace_bytes``), and the cache
        accumulates the total in :attr:`trace_bytes_saved`.
        """
        entry = {
            "version": CACHE_VERSION,
            "cell": dataclasses.asdict(cell),
            "payload": payload,
            "metrics": metrics,
            "wall_usec": wall_usec,
        }
        if payload_has_traces(payload):
            from repro.flashsim.trace import IOTrace, pickled_sizes

            columnar_total = 0
            object_total = 0
            for row in payload["rows"]:
                for trace_payload in row.get("traces", ()):
                    columnar, object_graph = pickled_sizes(
                        IOTrace.from_payload(trace_payload)
                    )
                    columnar_total += columnar
                    object_total += object_graph
            entry["trace_bytes"] = {
                "columnar": columnar_total,
                "object_graph": object_total,
                "saved": object_total - columnar_total,
            }
            self.trace_bytes_saved += object_total - columnar_total
        path = self._path(key)
        path.write_text(json.dumps(entry, indent=2))
        return path


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

def _pool_context():
    """Prefer fork on platforms that have it: child processes inherit
    ``sys.path``, so the pool works under test runners that injected
    the package path at runtime."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class CampaignExecutor:
    """Executes campaign cells, optionally in parallel and memoized.

    ``jobs == 1`` runs cells inline; ``jobs > 1`` fans cache misses out
    across a process pool.  Either way every cell starts from the same
    restored snapshot and runs the same code path, so the two modes
    produce identical results.

    ``keep_traces`` makes cells keep and return their per-IO traces
    (columnar payloads); cache entries stored without traces then no
    longer satisfy a hit and are re-run.  ``attribution`` attaches a
    flight recorder to every cell device so the traces carry exact
    per-IO latency-attribution columns (implies ``keep_traces``; cache
    entries without attribution are likewise re-run).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | str | Path | None = None,
        enforce: bool = True,
        enforce_seed: int = 97,
        state_pool: StatePool | None = None,
        keep_traces: bool = False,
        attribution: bool = False,
    ) -> None:
        if jobs < 1:
            raise ExperimentError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = RunCache(cache) if isinstance(cache, (str, Path)) else cache
        self.enforce = enforce
        self.enforce_seed = enforce_seed
        self.attribution = attribution
        self.keep_traces = keep_traces or attribution
        self._pool = state_pool or StatePool()

    def prepare(self, profile: str, capacity: int | None):
        """Build one profile's device in the enforced state.

        Returns ``(capacity, snapshot, fingerprint)``; the enforcement
        itself is memoized in the executor's :class:`StatePool`, so a
        profile is only ever filled once per executor.
        """
        device = build_device(profile, logical_bytes=capacity)
        if self.enforce:
            state = self._pool.ensure(device, seed=self.enforce_seed)
            return device.capacity, state.snapshot, state.fingerprint
        return device.capacity, device.snapshot(), device.fingerprint()

    def execute(
        self,
        cells: Sequence[CampaignCell],
        status: Callable[[str], None] | None = None,
        progress: Callable[[CellOutcome, int, int], None] | None = None,
    ) -> list[CellOutcome]:
        """Run every cell; outcomes come back in the order given.

        ``progress`` fires once per cell *as it lands* — cache hits
        immediately, executed cells in completion order (the parallel
        path consumes futures with :func:`as_completed`, so one slow
        cell cannot block reporting of the others).  The returned list
        always follows the input order regardless.
        """
        report = status or (lambda message: None)
        registry = obs_metrics.current()
        tracer = obs_tracing.current()
        observe = Observe(
            metrics=registry is not None,
            tracing=tracer is not None,
            traces=self.keep_traces,
            attribution=self.attribution,
        )
        total = len(cells)
        done = 0

        def notify(outcome: CellOutcome) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(outcome, done, total)

        def finish(index: int, cell: CampaignCell, key: str | None, envelope: dict):
            outcome = CellOutcome(
                cell=cell,
                payload=envelope["payload"],
                cached=False,
                metrics=envelope["metrics"],
                wall_usec=envelope["wall_usec"],
            )
            outcomes[index] = outcome
            if self.cache is not None and key is not None:
                self.cache.put(
                    key,
                    cell,
                    envelope["payload"],
                    metrics=envelope["metrics"],
                    wall_usec=envelope["wall_usec"],
                )
            if registry is not None:
                registry.histogram("core.executor.cell_wall_usec").observe(
                    envelope["wall_usec"]
                )
            notify(outcome)

        with obs_tracing.span("campaign", cat="executor", cells=total):
            outcomes: list[CellOutcome | None] = [None] * len(cells)
            prepared: dict[tuple[str, int | None], tuple[int, DeviceSnapshot, str]] = {}
            pending: list[tuple[int, CampaignCell, DeviceSnapshot, str | None]] = []

            for index, cell in enumerate(cells):
                group = (cell.profile, cell.capacity)
                if group not in prepared:
                    report(f"preparing enforced state for {cell.profile} ...")
                    with obs_tracing.span(
                        "prepare", cat="executor", profile=cell.profile
                    ):
                        prepared[group] = self.prepare(cell.profile, cell.capacity)
                capacity, snapshot, fingerprint = prepared[group]
                key = None
                if self.cache is not None:
                    digest = self.cache.spec_digest(cell, capacity)
                    key = self.cache.key(cell, fingerprint, digest)
                    entry = self.cache.get_entry(
                        key,
                        cell,
                        require_traces=self.keep_traces,
                        require_attribution=self.attribution,
                    )
                    if entry is not None:
                        outcome = CellOutcome(
                            cell=cell,
                            payload=entry["payload"],
                            cached=True,
                            metrics=entry.get("metrics"),
                            wall_usec=0.0,
                        )
                        outcomes[index] = outcome
                        if registry is not None:
                            registry.counter("core.executor.cells_cached").inc()
                        notify(outcome)
                        continue
                pending.append((index, cell, snapshot, key))

            if pending:
                report(f"running {len(pending)} cell(s) with jobs={self.jobs}")
            if self.jobs == 1 or len(pending) <= 1:
                for index, cell, snapshot, key in pending:
                    finish(
                        index,
                        cell,
                        key,
                        _run_cell_body(
                            cell,
                            snapshot,
                            keep_traces=self.keep_traces,
                            attribution=self.attribution,
                        ),
                    )
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_pool_context()
                ) as pool:
                    futures = {
                        pool.submit(_execute_cell_remote, cell, snapshot, observe): (
                            index,
                            cell,
                            key,
                        )
                        for index, cell, snapshot, key in pending
                    }
                    for future in as_completed(futures):
                        index, cell, key = futures[future]
                        envelope = future.result()
                        if tracer is not None and envelope.get("spans"):
                            tracer.absorb(envelope["spans"])
                        if registry is not None and envelope.get("registry") is not None:
                            registry.absorb(envelope["registry"])
                        finish(index, cell, key, envelope)
            if registry is not None:
                registry.counter("core.executor.cells_total").inc(total)
        return [outcome for outcome in outcomes if outcome is not None]


def results_by_experiment(outcomes: Sequence[CellOutcome]) -> dict[str, ExperimentResult]:
    """Assemble executor outcomes into a campaign's results mapping."""
    return {outcome.cell.experiment: outcome.result() for outcome in outcomes}


def merge_outcome_metrics(outcomes: Sequence[CellOutcome]) -> dict[str, float]:
    """Campaign-wide metrics: the sum of every cell's counter delta.

    Cells without metrics (observability was off when they ran and when
    they were cached) contribute nothing.
    """
    from repro.obs.metrics import merge_counts

    return merge_counts(*(outcome.metrics for outcome in outcomes))


__all__ = [
    "CampaignCell",
    "CampaignExecutor",
    "CellOutcome",
    "Observe",
    "OBSERVE_NOTHING",
    "RunCache",
    "merge_outcome_metrics",
    "plan_cells",
    "results_by_experiment",
    "run_cell",
]
