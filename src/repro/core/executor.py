"""Parallel campaign execution with snapshot restore and memoization.

A campaign decomposes into independent *cells* — one (device profile,
experiment) pair each.  Cells share nothing but the enforced initial
state, which the executor builds **once per profile**, snapshots, and
hands to every cell; each cell restores the snapshot onto its own
device and runs with its own target-space allocator.  Because the
simulator is deterministic, the same cell always produces the same
measurements — which buys two things:

* **parallelism** — cells fan out across worker processes
  (``jobs > 1``) and the results are bit-identical to running them
  sequentially (``jobs == 1`` uses the identical per-cell code path,
  inline);
* **memoization** — a :class:`RunCache` stores finished cells on disk
  keyed by (profile, state fingerprint, spec); a repeated campaign
  re-runs zero already-measured cells.

Cells are described by picklable primitives only: experiments hold
pattern-builder closures that cannot cross a process boundary, so
workers rebuild them from the micro-benchmark registry
(:func:`~repro.core.microbench.build_microbenchmark`).  Results travel
as the archive's JSON payloads, which round-trip floats exactly.

Campaign throughput (see DESIGN.md §14)
---------------------------------------

uFLIP makes device state the dominant campaign cost, and the naive
parallel dispatch re-pays it constantly: the parent enforces state
serially before any cell runs, every submitted cell ships a full
pickled snapshot through the pool pipe, and every worker rebuilds a
device from scratch and restores cold.  Three mechanisms remove that
serial tax while keeping results bit-identical to ``jobs=1``:

* **zero-copy snapshot distribution** — enforced snapshots are packed
  once into a content-addressed shared-memory
  :class:`~repro.flashsim.snapshot.SnapshotStore` keyed by the state
  fingerprint; cells carry a segment *name* instead of a snapshot, and
  workers attach and restore from read-only views (per-cell snapshot
  bytes through the pipe drop to ~0);
* **warm-worker scheduling** — each worker keeps a small LRU of
  resident built devices per ``(profile, capacity)`` plus the base
  fingerprint the resident is known to sit at; the executor dispatches
  a group's cells contiguously so consecutive cells on a worker reuse
  the resident (no rebuild), and a worker whose resident still sits at
  the cell's base state skips the restore outright;
* **pipelined state preparation** — with more than one profile in
  flight, enforcement itself moves into the workers: independent
  profiles enforce concurrently (publishing into the snapshot store)
  while cells of already-prepared profiles execute.

Scheduling effects are visible in :attr:`CampaignExecutor.sched`
(a :class:`SchedulerStats`) and, when metrics are installed, as
``core.executor.warm_hits`` / ``cold_builds`` / ``restores_skipped`` /
``snapshot_bytes_shipped`` / ``snapshot_bytes_saved`` counters.
``tools/bench_campaign.py`` measures the end-to-end effect against the
legacy dispatch (kept available via ``share_snapshots=False,
warm_workers=False, pipeline_prepare=False``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import pickle
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.archive import (
    payload_has_attribution,
    payload_has_traces,
    result_from_payload,
    result_to_payload,
)
from repro.core.experiment import Experiment, ExperimentResult, run_experiment
from repro.core.methodology import StatePool, enforce_random_state
from repro.core.microbench import BenchContext, build_microbenchmark
from repro.core.plan import TargetAllocator
from repro.errors import ExperimentError, PlanError
from repro.flashsim import analytic
from repro.flashsim.profiles import build_device, get_profile
from repro.flashsim.snapshot import (
    DeviceSnapshot,
    SnapshotStore,
    attach_segment,
    publish_from_worker,
)
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsSnapshot, diff_counts
from repro.units import SEC

CACHE_VERSION = 1


@dataclass(frozen=True)
class Observe:
    """Which observability channels worker processes should record.

    The executor derives this from the globals installed in the parent
    process; it must travel explicitly because a ``fork``-started worker
    *inherits* the parent's installed tracer/registry objects — recording
    into those copies would silently lose everything, so workers shadow
    them with fresh instances (or ``None``) based on these flags.

    ``traces`` asks the cell to keep and return its per-IO traces
    (columnar payloads inside the result) rather than statistics only.
    ``attribution`` additionally attaches a flight recorder to the cell
    device so every trace carries per-IO latency-attribution columns
    (implies ``traces``).
    """

    metrics: bool = False
    tracing: bool = False
    traces: bool = False
    attribution: bool = False


#: the default: no observability channels recorded
OBSERVE_NOTHING = Observe()


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work, in picklable primitives."""

    profile: str
    capacity: int | None
    benchmark: str
    experiment: str
    io_size: int
    io_count: int
    io_ignore: int = 0
    seed: int = 42
    repetitions: int = 1
    pause_usec: float = 1.0 * SEC


@dataclass
class CellOutcome:
    """One executed (or cache-served) cell."""

    cell: CampaignCell
    payload: dict
    cached: bool = False
    #: per-cell device-counter delta (``None`` when metrics were off both
    #: when the cell ran and when its cache entry was written)
    metrics: dict | None = None
    #: host wall-clock time the cell took to execute (0 for cache hits)
    wall_usec: float = 0.0

    def result(self) -> ExperimentResult:
        """The cell's measurements as an :class:`ExperimentResult`."""
        return result_from_payload(self.cell.experiment, self.payload)


def plan_cells(
    profile: str,
    capacity: int | None,
    benchmarks: Sequence[str],
    *,
    io_size: int,
    io_count: int,
    io_ignore: int = 0,
    seed: int = 42,
    repetitions: int = 1,
    pause_usec: float = 1.0 * SEC,
) -> list[CampaignCell]:
    """Enumerate one profile's campaign as cells, one per experiment."""
    resolved = capacity if capacity is not None else get_profile(profile).sim_logical_bytes
    context = BenchContext(
        capacity=resolved,
        io_size=io_size,
        io_count=io_count,
        io_ignore=io_ignore,
        seed=seed,
    )
    cells = []
    for name in benchmarks:
        for experiment in build_microbenchmark(name, context).experiments:
            cells.append(
                CampaignCell(
                    profile=profile,
                    capacity=capacity,
                    benchmark=name,
                    experiment=experiment.name,
                    io_size=io_size,
                    io_count=io_count,
                    io_ignore=io_ignore,
                    seed=seed,
                    repetitions=repetitions,
                    pause_usec=pause_usec,
                )
            )
    return cells


def _cell_experiment(cell: CampaignCell, capacity: int) -> Experiment:
    """Rebuild a cell's experiment from the micro-benchmark registry."""
    context = BenchContext(
        capacity=capacity,
        io_size=cell.io_size,
        io_count=cell.io_count,
        io_ignore=cell.io_ignore,
        seed=cell.seed,
    )
    for experiment in build_microbenchmark(cell.benchmark, context).experiments:
        if experiment.name == cell.experiment:
            return experiment
    raise ExperimentError(
        f"micro-benchmark {cell.benchmark!r} has no experiment {cell.experiment!r}"
    )


def _run_cell_body(
    cell: CampaignCell,
    snapshot: DeviceSnapshot,
    keep_traces: bool = False,
    attribution: bool = False,
    *,
    device=None,
    skip_restore: bool = False,
) -> dict:
    """Execute one cell; returns an envelope of payload + observability.

    The single per-cell code path: the sequential executor calls it
    inline (under the parent's installed tracer/registry, if any),
    worker processes call it via :func:`_execute_cell_fast` (or the
    legacy :func:`_execute_cell_remote`) under their own.  Determinism
    makes all executions bit-identical.

    ``device`` lets a warm worker pass its resident built device instead
    of paying a rebuild; ``skip_restore`` additionally skips the initial
    snapshot restore when the caller *knows* the device already sits
    exactly at the snapshot state (enforce just ran, or the previous
    dispatch restored and did not run).  The snapshot must still be
    supplied — the allocator-overflow guard restores from it.  Any
    attached flight recorder is detached up front (device restores do
    not clear recorders), so a recycled device records if and only if
    this cell asks for attribution.

    The envelope maps ``payload`` (the measurements, with columnar
    per-IO traces included when ``keep_traces``), ``metrics`` (the
    cell's device-counter delta, ``None`` when metrics are off) and
    ``wall_usec`` (host wall-clock execution time).
    """
    registry = obs_metrics.current()
    analytic_baseline = (
        analytic.STATS.counters() if registry is not None else None
    )
    wall_start = time.perf_counter()
    with obs_tracing.span(
        "cell", cat="executor", profile=cell.profile, experiment=cell.experiment
    ):
        if device is None:
            device = build_device(cell.profile, logical_bytes=cell.capacity)
        if not skip_restore:
            device.restore(snapshot)
        device.detach_recorder()
        if attribution:
            from repro.flashsim.recorder import FlightRecorder

            device.attach_recorder(FlightRecorder())
        before = device.metrics() if registry is not None else None
        experiment = _cell_experiment(cell, device.capacity)
        allocator = TargetAllocator(device.capacity, device.geometry.block_size)

        def allocate(spec):
            placed = allocator.place(spec)
            if placed is None:
                # runtime guard, mirroring BenchmarkPlan.execute: restore
                # the enforced state and restart the target space
                device.restore(snapshot)
                allocator.reset()
                placed = allocator.place(spec)
                if placed is None:
                    raise PlanError("spec does not fit even on a fresh device")
            return placed

        result = run_experiment(
            device,
            experiment,
            pause_usec=cell.pause_usec,
            repetitions=cell.repetitions,
            allocate=allocate,
            keep_traces=keep_traces,
        )
    envelope = {
        "payload": result_to_payload(result, include_traces=keep_traces),
        "metrics": None,
        "wall_usec": (time.perf_counter() - wall_start) * 1e6,
    }
    if registry is not None:
        envelope["metrics"] = diff_counts(device.metrics(), before)
        registry.counter("core.executor.cells_executed").inc()
        analytic.publish_stats(registry, analytic_baseline)
    return envelope


def run_cell(cell: CampaignCell, snapshot: DeviceSnapshot) -> dict:
    """Execute one cell from a restored snapshot; returns the payload.

    Compatibility front over :func:`_run_cell_body` for callers that
    only want the measurements.
    """
    return _run_cell_body(cell, snapshot)["payload"]


def _execute_cell_remote(
    cell: CampaignCell, snapshot: DeviceSnapshot, observe: Observe
) -> dict:
    """Legacy worker-process entry point: one cell, snapshot shipped in.

    Always shadows the process-global tracer/registry: under the
    ``fork`` start method the worker inherits the parent's installed
    objects, and spans or counts recorded into those copies would be
    lost.  Fresh instances are installed when the parent observes the
    matching channel; their contents travel home in the envelope
    (``spans`` as picklable payload tuples, ``registry`` as a
    :class:`MetricsSnapshot`) for the parent to absorb.

    Kept as the ``legacy`` dispatch (cold rebuild + full pickled
    snapshot per cell) — the baseline ``tools/bench_campaign.py``
    measures the warm dispatch against.
    """
    tracer = obs_tracing.Tracer() if observe.tracing else None
    registry = obs_metrics.MetricsRegistry() if observe.metrics else None
    with obs_tracing.installed(tracer), obs_metrics.installed(registry):
        envelope = _run_cell_body(
            cell,
            snapshot,
            keep_traces=observe.traces,
            attribution=observe.attribution,
        )
    envelope["spans"] = (
        [span.to_payload() for span in tracer.spans] if tracer is not None else []
    )
    envelope["registry"] = registry.snapshot() if registry is not None else None
    return envelope


# ----------------------------------------------------------------------
# warm workers: resident devices + shared-memory snapshot views
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _CellTask:
    """One dispatched cell plus how its worker reaches the base state.

    Exactly one of ``segment`` (a shared-memory name the worker attaches
    and restores from, zero bytes through the pipe) and ``snapshot``
    (a full pickled snapshot, the fallback when shared memory is
    unavailable) is set.  ``fingerprint`` identifies the base state, so
    a warm worker whose resident device already sits there can skip the
    restore; ``warm`` gates resident-device reuse entirely.
    """

    cell: CampaignCell
    fingerprint: str
    segment: str | None = None
    snapshot: DeviceSnapshot | None = None
    warm: bool = True


@dataclass(frozen=True)
class _PrepareTask:
    """One profile's state enforcement, moved into a worker process.

    ``token`` names the parent's :class:`SnapshotStore`; when set, the
    worker publishes the enforced snapshot into shared memory and the
    envelope carries only the segment name.  ``warm`` additionally
    installs the freshly enforced device as the worker's resident for
    the group — sitting exactly at the published state, so the first
    cell dispatched to this worker skips its restore.
    """

    profile: str
    capacity: int | None
    enforce: bool
    seed: int
    token: str | None = None
    warm: bool = True


#: resident built devices per (profile, capacity), newest last
_WORKER_RESIDENT: "OrderedDict[tuple, object]" = OrderedDict()
#: base fingerprint each resident is known to sit at (None = dirty)
_WORKER_AT: dict = {}
#: shared-memory segments this worker has attached: name -> (shm, snapshot)
_WORKER_ATTACHED: dict = {}
#: residents kept per worker; devices beyond this are rebuilt on demand
_RESIDENT_CAP = 4


def _worker_device(cell: CampaignCell):
    """The worker's resident device for a cell's group, building on miss.

    Returns ``(device, warm)`` — ``warm`` is True when the resident
    existed (build skipped).  The resident table is a small LRU; evicted
    groups simply rebuild when they come back.
    """
    key = (cell.profile, cell.capacity)
    device = _WORKER_RESIDENT.get(key)
    if device is not None:
        _WORKER_RESIDENT.move_to_end(key)
        return device, True
    device = build_device(cell.profile, logical_bytes=cell.capacity)
    _install_resident(key, device, None)
    return device, False


def _install_resident(key: tuple, device, fingerprint: str | None) -> None:
    """Insert/refresh one resident device, evicting past the LRU cap."""
    _WORKER_RESIDENT[key] = device
    _WORKER_RESIDENT.move_to_end(key)
    _WORKER_AT[key] = fingerprint
    while len(_WORKER_RESIDENT) > _RESIDENT_CAP:
        evicted, _ = _WORKER_RESIDENT.popitem(last=False)
        _WORKER_AT.pop(evicted, None)


def _task_snapshot(task: _CellTask) -> DeviceSnapshot:
    """The base-state snapshot a cell task restores from.

    Segment-backed tasks attach to shared memory once per worker and
    reuse the zero-copy view snapshot for every later cell of the same
    state; inline tasks carry the snapshot themselves.
    """
    if task.segment is not None:
        cached = _WORKER_ATTACHED.get(task.segment)
        if cached is None:
            cached = attach_segment(task.segment)
            _WORKER_ATTACHED[task.segment] = cached
        return cached[1]
    if task.snapshot is None:  # defensive: dispatcher always sets one
        raise ExperimentError(
            f"cell task for {task.cell.experiment!r} carries neither a "
            "segment nor a snapshot"
        )
    return task.snapshot


def _execute_cell_fast(task: _CellTask, observe: Observe) -> dict:
    """Warm worker-process entry point for one cell.

    Same observability shadowing as :func:`_execute_cell_remote`; the
    difference is state handling — the device comes from the worker's
    resident LRU (rebuilt only on a cold miss), the snapshot from the
    shared-memory store (zero-copy views), and the restore is skipped
    when the resident is known to sit at the cell's base fingerprint
    (i.e. enforcement just ran here).  Running a cell dirties the
    resident, so the skip is claimed at most once per enforcement.
    The envelope's ``sched`` entry reports what happened.
    """
    tracer = obs_tracing.Tracer() if observe.tracing else None
    registry = obs_metrics.MetricsRegistry() if observe.metrics else None
    with obs_tracing.installed(tracer), obs_metrics.installed(registry):
        key = (task.cell.profile, task.cell.capacity)
        if task.warm:
            device, warm = _worker_device(task.cell)
            skip = warm and _WORKER_AT.get(key) == task.fingerprint
            _WORKER_AT[key] = None  # the run below dirties the device
        else:
            device, warm, skip = None, False, False
        snapshot = _task_snapshot(task)
        envelope = _run_cell_body(
            task.cell,
            snapshot,
            keep_traces=observe.traces,
            attribution=observe.attribution,
            device=device,
            skip_restore=skip,
        )
    envelope["spans"] = (
        [span.to_payload() for span in tracer.spans] if tracer is not None else []
    )
    envelope["registry"] = registry.snapshot() if registry is not None else None
    envelope["sched"] = {"warm": warm, "skipped_restore": skip}
    return envelope


def _prepare_remote(task: _PrepareTask, observe: Observe) -> dict:
    """Worker-process entry point for one profile's state enforcement.

    Builds the device, enforces the random state, publishes the snapshot
    into the parent's shared-memory store (when a ``token`` names one)
    and installs the device — sitting exactly at the enforced state — as
    this worker's resident.  The envelope ships the segment name plus
    bookkeeping sizes home; only when publishing was impossible does it
    carry the full snapshot.
    """
    tracer = obs_tracing.Tracer() if observe.tracing else None
    registry = obs_metrics.MetricsRegistry() if observe.metrics else None
    wall_start = time.perf_counter()
    with obs_tracing.installed(tracer), obs_metrics.installed(registry):
        analytic_baseline = (
            analytic.STATS.counters() if registry is not None else None
        )
        with obs_tracing.span("prepare", cat="executor", profile=task.profile):
            device = build_device(task.profile, logical_bytes=task.capacity)
            if task.enforce:
                enforce_random_state(device, seed=task.seed)
            snapshot = device.snapshot()
            fingerprint = device.fingerprint()
        if registry is not None:
            analytic.publish_stats(registry, analytic_baseline)
        segment = None
        packed_bytes = 0
        if task.token is not None:
            try:
                shm, snapshot, segment, packed_bytes = publish_from_worker(
                    task.token, fingerprint, snapshot
                )
                _WORKER_ATTACHED[segment] = (shm, snapshot)
            except (OSError, ValueError):  # no shared memory: ship inline
                segment = None
        if task.warm:
            _install_resident((task.profile, task.capacity), device, fingerprint)
    envelope = {
        "profile": task.profile,
        "capacity": device.capacity,
        "fingerprint": fingerprint,
        "segment": segment,
        "snapshot": None if segment is not None else snapshot,
        "packed_bytes": packed_bytes,
        "pickled_bytes": len(pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL)),
        "wall_usec": (time.perf_counter() - wall_start) * 1e6,
    }
    envelope["spans"] = (
        [span.to_payload() for span in tracer.spans] if tracer is not None else []
    )
    envelope["registry"] = registry.snapshot() if registry is not None else None
    return envelope


# ----------------------------------------------------------------------
# run cache
# ----------------------------------------------------------------------

class RunCache:
    """On-disk memo of executed cells.

    Keys combine the cell description, the *spec digest* (the reprs of
    the actual pattern specs the experiment will run — so a code change
    that alters patterns invalidates entries) and the device-state
    fingerprint.  Entries are JSON files; floats round-trip exactly, so
    a cache hit returns the same numbers the run produced.

    Besides the global ``hits`` / ``misses`` / ``bytes_saved`` accounts
    the cache keeps a per-profile breakdown in :attr:`profiles` (hits,
    misses, simulated bytes saved, stored payload bytes), which the CLI
    renders as the per-profile cache table under ``--metrics``.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: simulated IO volume the hits avoided re-measuring
        self.bytes_saved = 0
        #: pickle bytes the columnar trace format saved over the legacy
        #: object-graph format, summed over entries stored with traces
        self.trace_bytes_saved = 0
        #: serialized payload bytes written by :meth:`put` this session
        self.payload_bytes = 0
        #: per-profile account: hits, misses, bytes_saved, payload_bytes
        self.profiles: dict[str, dict[str, int]] = {}

    def _profile_stats(self, profile: str) -> dict[str, int]:
        """The mutable per-profile account row, created on first use."""
        return self.profiles.setdefault(
            profile,
            {"hits": 0, "misses": 0, "bytes_saved": 0, "payload_bytes": 0},
        )

    @staticmethod
    def key(cell: CampaignCell, fingerprint: str, spec_digest: str) -> str:
        """Cache key of one cell under one device state."""
        blob = json.dumps(
            {
                "version": CACHE_VERSION,
                "cell": dataclasses.asdict(cell),
                "fingerprint": fingerprint,
                "specs": spec_digest,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    @staticmethod
    def spec_digest(cell: CampaignCell, capacity: int) -> str:
        """Hash of every spec the cell will execute."""
        experiment = _cell_experiment(cell, capacity)
        hasher = hashlib.sha256()
        hasher.update(experiment.name.encode())
        hasher.update(experiment.parameter.encode())
        for value in experiment.values:
            hasher.update(repr(value).encode())
            hasher.update(repr(experiment.spec_for(value)).encode())
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _miss(self, cell: CampaignCell | None) -> None:
        """Account one miss, globally and per profile when known."""
        self.misses += 1
        if cell is not None:
            self._profile_stats(cell.profile)["misses"] += 1

    def get_entry(
        self,
        key: str,
        cell: CampaignCell | None = None,
        require_traces: bool = False,
        require_attribution: bool = False,
    ) -> dict | None:
        """The whole memoized entry for ``key``, or None on a miss.

        Passing the ``cell`` lets the cache credit its bytes-saved
        account on a hit: every hit avoids re-simulating the cell's IO
        volume (io_count x io_size per repetition).  With
        ``require_traces``, an entry stored without per-IO traces does
        not satisfy a trace-keeping campaign and counts as a miss;
        ``require_attribution`` further requires the traces to carry
        latency-attribution columns.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self._miss(cell)
            return None
        if entry.get("version") != CACHE_VERSION:
            self._miss(cell)
            return None
        if require_traces and not payload_has_traces(entry.get("payload", {})):
            self._miss(cell)
            return None
        if require_attribution and not payload_has_attribution(
            entry.get("payload", {})
        ):
            self._miss(cell)
            return None
        self.hits += 1
        if cell is not None:
            saved = cell.io_count * cell.io_size * max(1, cell.repetitions)
            self.bytes_saved += saved
            stats = self._profile_stats(cell.profile)
            stats["hits"] += 1
            stats["bytes_saved"] += saved
        return entry

    def get(self, key: str) -> dict | None:
        """The memoized payload for ``key``, or None on a miss."""
        entry = self.get_entry(key)
        return entry["payload"] if entry is not None else None

    def put(
        self,
        key: str,
        cell: CampaignCell,
        payload: dict,
        metrics: dict | None = None,
        wall_usec: float = 0.0,
    ) -> Path:
        """Store one executed cell's payload (and observability) under ``key``.

        The entry records its serialized payload size (``payload_bytes``
        — what a future hit reads instead of re-simulating), accumulated
        globally in :attr:`payload_bytes` and per profile.  When the
        payload carries per-IO traces, the entry additionally records
        how many pickle bytes the columnar format saved over the legacy
        object-graph format (``trace_bytes``), and the cache accumulates
        the total in :attr:`trace_bytes_saved`.
        """
        payload_size = len(json.dumps(payload))
        entry = {
            "version": CACHE_VERSION,
            "cell": dataclasses.asdict(cell),
            "payload": payload,
            "payload_bytes": payload_size,
            "metrics": metrics,
            "wall_usec": wall_usec,
        }
        self.payload_bytes += payload_size
        self._profile_stats(cell.profile)["payload_bytes"] += payload_size
        if payload_has_traces(payload):
            from repro.flashsim.trace import IOTrace, pickled_sizes

            columnar_total = 0
            object_total = 0
            for row in payload["rows"]:
                for trace_payload in row.get("traces", ()):
                    columnar, object_graph = pickled_sizes(
                        IOTrace.from_payload(trace_payload)
                    )
                    columnar_total += columnar
                    object_total += object_graph
            entry["trace_bytes"] = {
                "columnar": columnar_total,
                "object_graph": object_total,
                "saved": object_total - columnar_total,
            }
            self.trace_bytes_saved += object_total - columnar_total
        path = self._path(key)
        path.write_text(json.dumps(entry, indent=2))
        return path


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

def _pool_context():
    """Prefer fork on platforms that have it: child processes inherit
    ``sys.path``, so the pool works under test runners that injected
    the package path at runtime."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class SchedulerStats:
    """What the campaign dispatcher did, accumulated per executor.

    ``warm_hits`` / ``cold_builds`` split executed cells by whether the
    worker reused a resident device; ``restores_skipped`` counts cells
    that ran without even a restore (resident sat at the base state).
    ``bytes_shipped`` is pickled snapshot volume sent through the pool
    pipe; ``bytes_saved`` the volume segment-backed dispatches avoided
    (one pickled-snapshot's worth per cell).  Mirrored into
    ``core.executor.*`` counters when metrics are installed.
    """

    warm_hits: int = 0
    cold_builds: int = 0
    restores_skipped: int = 0
    segments_published: int = 0
    bytes_shipped: int = 0
    bytes_saved: int = 0
    prepared_evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        """The stats as a plain dict (benchmark/report serialization)."""
        return dataclasses.asdict(self)


#: SchedulerStats field -> obs counter mirroring it
_SCHED_COUNTERS = {
    "warm_hits": "core.executor.warm_hits",
    "cold_builds": "core.executor.cold_builds",
    "restores_skipped": "core.executor.restores_skipped",
    "segments_published": "core.executor.snapshot_segments",
    "bytes_shipped": "core.executor.snapshot_bytes_shipped",
    "bytes_saved": "core.executor.snapshot_bytes_saved",
    "prepared_evicted": "core.executor.prepared_evicted",
}


@dataclass
class _PreparedGroup:
    """One (profile, capacity) group's enforced base state, as the
    parent tracks it: the fingerprint always, plus whichever
    distribution forms exist — a shared-memory ``segment`` and/or an
    in-process ``snapshot`` (lazily fetched from the store when the
    sequential path needs one)."""

    capacity: int
    fingerprint: str
    snapshot: DeviceSnapshot | None = None
    segment: str | None = None
    packed_bytes: int = 0
    pickled_bytes: int = 0


class CampaignExecutor:
    """Executes campaign cells, optionally in parallel and memoized.

    ``jobs == 1`` runs cells inline; ``jobs > 1`` fans cache misses out
    across a process pool.  Either way every cell starts from the same
    restored snapshot and runs the same code path, so the two modes
    produce identical results.

    The parallel dispatch defaults to the throughput architecture of
    DESIGN.md §14 — ``share_snapshots`` (zero-copy shared-memory
    snapshot distribution), ``warm_workers`` (resident devices +
    restore skipping) and ``pipeline_prepare`` (state enforcement in
    workers, concurrent across profiles).  Setting all three False
    selects the legacy dispatch: serial parent-side enforcement and one
    pickled snapshot through the pipe per cell.  Results are
    bit-identical across all modes; :attr:`sched` reports what the
    dispatcher did.  Executors that shared snapshots own shared-memory
    segments — release them with :meth:`close` (or use the executor as
    a context manager); a finalizer and the resource tracker back the
    explicit cleanup up.

    ``keep_traces`` makes cells keep and return their per-IO traces
    (columnar payloads); cache entries stored without traces then no
    longer satisfy a hit and are re-run.  ``attribution`` attaches a
    flight recorder to every cell device so the traces carry exact
    per-IO latency-attribution columns (implies ``keep_traces``; cache
    entries without attribution are likewise re-run).

    ``max_states`` bounds both the executor's prepared-group memo and
    its :class:`StatePool` to that many enforced states (LRU); evicted
    groups re-enforce if they come back.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | str | Path | None = None,
        enforce: bool = True,
        enforce_seed: int = 97,
        state_pool: StatePool | None = None,
        keep_traces: bool = False,
        attribution: bool = False,
        share_snapshots: bool = True,
        warm_workers: bool = True,
        pipeline_prepare: bool = True,
        max_states: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = RunCache(cache) if isinstance(cache, (str, Path)) else cache
        self.enforce = enforce
        self.enforce_seed = enforce_seed
        self.attribution = attribution
        self.keep_traces = keep_traces or attribution
        self.share_snapshots = share_snapshots
        self.warm_workers = warm_workers
        self.pipeline_prepare = pipeline_prepare
        self.max_states = max_states
        self._pool = state_pool or StatePool(max_states=max_states)
        self._store: SnapshotStore | None = None
        self._prepared: "OrderedDict[tuple, _PreparedGroup]" = OrderedDict()
        #: what the dispatcher did, accumulated across execute() calls
        self.sched = SchedulerStats()

    # ------------------------------------------------------------------
    # state preparation (parent side)
    # ------------------------------------------------------------------

    def prepare(self, profile: str, capacity: int | None):
        """Build one profile's device in the enforced state.

        Returns ``(capacity, snapshot, fingerprint)``; the enforcement
        itself is memoized in the executor's :class:`StatePool`, so a
        profile is only ever filled once per executor.
        """
        device = build_device(profile, logical_bytes=capacity)
        if self.enforce:
            state = self._pool.ensure(device, seed=self.enforce_seed)
            return device.capacity, state.snapshot, state.fingerprint
        return device.capacity, device.snapshot(), device.fingerprint()

    def _remember_group(
        self, group: tuple, prep: _PreparedGroup, protect: frozenset = frozenset()
    ) -> None:
        """Memoize a prepared group, evicting past ``max_states`` (LRU).

        Groups in ``protect`` (those with cells in flight) are never
        evicted; an evicted group's shared-memory segment is unlinked.
        """
        self._prepared[group] = prep
        self._prepared.move_to_end(group)
        if self.max_states is None:
            return
        while len(self._prepared) > self.max_states:
            victim = next(
                (g for g in self._prepared if g not in protect and g != group),
                None,
            )
            if victim is None:
                break
            old = self._prepared.pop(victim)
            if old.segment is not None and self._store is not None:
                self._store.discard(old.fingerprint)
            self.sched.prepared_evicted += 1

    def _prepared_group(self, cell: CampaignCell, report) -> _PreparedGroup:
        """The cell's group with an in-process snapshot, preparing on miss.

        Serves the sequential and legacy paths, which restore from a
        parent-held snapshot: a memoized segment-only group (left by a
        previous pipelined execute) fetches a copy out of the store
        rather than re-enforcing.
        """
        group = (cell.profile, cell.capacity)
        prep = self._prepared.get(group)
        if prep is not None:
            self._prepared.move_to_end(group)
            if prep.snapshot is None and self._store is not None:
                prep.snapshot = self._store.fetch(prep.fingerprint)
            if prep.snapshot is None:
                prep = None  # segment gone (store closed): re-prepare
        if prep is None:
            report(f"preparing enforced state for {cell.profile} ...")
            with obs_tracing.span("prepare", cat="executor", profile=cell.profile):
                capacity, snapshot, fingerprint = self.prepare(
                    cell.profile, cell.capacity
                )
            prep = _PreparedGroup(
                capacity=capacity, fingerprint=fingerprint, snapshot=snapshot
            )
            self._remember_group(group, prep)
        return prep

    def _publish_group(self, prep: _PreparedGroup) -> None:
        """Publish a parent-prepared group into the shared-memory store.

        Failure (no shared memory on this platform) is not an error —
        the group's cells fall back to inline snapshots.
        """
        if not self.share_snapshots or prep.segment is not None:
            return
        if self._store is None:
            self._store = SnapshotStore()
        try:
            name, nbytes = self._store.publish(prep.fingerprint, prep.snapshot)
        except (OSError, ValueError):
            return
        prep.segment = name
        prep.packed_bytes = nbytes
        self.sched.segments_published += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self,
        cells: Sequence[CampaignCell],
        status: Callable[[str], None] | None = None,
        progress: Callable[[CellOutcome, int, int], None] | None = None,
    ) -> list[CellOutcome]:
        """Run every cell; outcomes come back in the order given.

        ``progress`` fires once per cell *as it lands* — cache hits as
        soon as their group's state (hence cache key) is known, executed
        cells in completion order (the parallel paths consume futures as
        they complete, so one slow cell cannot block reporting of the
        others).  The returned list always follows the input order
        regardless.
        """
        report = status or (lambda message: None)
        registry = obs_metrics.current()
        tracer = obs_tracing.current()
        observe = Observe(
            metrics=registry is not None,
            tracing=tracer is not None,
            traces=self.keep_traces,
            attribution=self.attribution,
        )
        total = len(cells)
        done = 0
        outcomes: list[CellOutcome | None] = [None] * total

        def notify(outcome: CellOutcome) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                progress(outcome, done, total)

        def serve_cached(index: int, cell: CampaignCell, entry: dict) -> None:
            outcome = CellOutcome(
                cell=cell,
                payload=entry["payload"],
                cached=True,
                metrics=entry.get("metrics"),
                wall_usec=0.0,
            )
            outcomes[index] = outcome
            if registry is not None:
                registry.counter("core.executor.cells_cached").inc()
            notify(outcome)

        def finish(index: int, cell: CampaignCell, key: str | None, envelope: dict):
            outcome = CellOutcome(
                cell=cell,
                payload=envelope["payload"],
                cached=False,
                metrics=envelope["metrics"],
                wall_usec=envelope["wall_usec"],
            )
            outcomes[index] = outcome
            if self.cache is not None and key is not None:
                self.cache.put(
                    key,
                    cell,
                    envelope["payload"],
                    metrics=envelope["metrics"],
                    wall_usec=envelope["wall_usec"],
                )
            if registry is not None:
                registry.histogram("core.executor.cell_wall_usec").observe(
                    envelope["wall_usec"]
                )
            notify(outcome)

        def absorb(envelope: dict) -> None:
            if tracer is not None and envelope.get("spans"):
                tracer.absorb(envelope["spans"])
            if registry is not None and envelope.get("registry") is not None:
                registry.absorb(envelope["registry"])

        def try_cache(cell: CampaignCell, prep: _PreparedGroup):
            if self.cache is None:
                return None, None
            digest = self.cache.spec_digest(cell, prep.capacity)
            key = self.cache.key(cell, prep.fingerprint, digest)
            entry = self.cache.get_entry(
                key,
                cell,
                require_traces=self.keep_traces,
                require_attribution=self.attribution,
            )
            return key, entry

        sched_before = dataclasses.replace(self.sched)
        with obs_tracing.span("campaign", cat="executor", cells=total):
            if self.jobs == 1 or total <= 1:
                self._run_sequential(cells, report, try_cache, serve_cached, finish)
            elif not (
                self.share_snapshots or self.warm_workers or self.pipeline_prepare
            ):
                self._run_legacy(
                    cells, observe, report, try_cache, serve_cached, finish, absorb
                )
            else:
                self._run_warm(
                    cells, observe, report, try_cache, serve_cached, finish, absorb
                )
            if registry is not None:
                registry.counter("core.executor.cells_total").inc(total)
                for field_name, counter in _SCHED_COUNTERS.items():
                    delta = getattr(self.sched, field_name) - getattr(
                        sched_before, field_name
                    )
                    if delta:
                        registry.counter(counter).inc(delta)
        return [outcome for outcome in outcomes if outcome is not None]

    def _run_sequential(self, cells, report, try_cache, serve_cached, finish) -> None:
        """Inline execution: prepare, cache-check and run cell by cell."""
        pending = 0
        for index, cell in enumerate(cells):
            prep = self._prepared_group(cell, report)
            key, entry = try_cache(cell, prep)
            if entry is not None:
                serve_cached(index, cell, entry)
                continue
            if pending == 0:
                report(f"running {len(cells) - index} cell(s) with jobs={self.jobs}")
            pending += 1
            finish(
                index,
                cell,
                key,
                _run_cell_body(
                    cell,
                    prep.snapshot,
                    keep_traces=self.keep_traces,
                    attribution=self.attribution,
                ),
            )

    def _run_legacy(
        self, cells, observe, report, try_cache, serve_cached, finish, absorb
    ) -> None:
        """The pre-throughput dispatch: serial parent-side enforcement,
        then one pickled snapshot through the pool pipe per cell and a
        cold device rebuild in the worker.  Kept both as the benchmark
        baseline and as the fallback the CLI exposes via
        ``--dispatch legacy``."""
        pending = []
        for index, cell in enumerate(cells):
            prep = self._prepared_group(cell, report)
            key, entry = try_cache(cell, prep)
            if entry is not None:
                serve_cached(index, cell, entry)
                continue
            pending.append((index, cell, prep, key))
        if pending:
            report(f"running {len(pending)} cell(s) with jobs={self.jobs}")
        if len(pending) <= 1:
            for index, cell, prep, key in pending:
                finish(
                    index,
                    cell,
                    key,
                    _run_cell_body(
                        cell,
                        prep.snapshot,
                        keep_traces=self.keep_traces,
                        attribution=self.attribution,
                    ),
                )
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = {}
            for index, cell, prep, key in pending:
                if prep.pickled_bytes == 0:
                    prep.pickled_bytes = len(
                        pickle.dumps(prep.snapshot, pickle.HIGHEST_PROTOCOL)
                    )
                self.sched.bytes_shipped += prep.pickled_bytes
                self.sched.cold_builds += 1
                futures[
                    pool.submit(_execute_cell_remote, cell, prep.snapshot, observe)
                ] = (index, cell, key)
            for future in as_completed(futures):
                index, cell, key = futures[future]
                envelope = future.result()
                absorb(envelope)
                finish(index, cell, key, envelope)

    def _run_warm(
        self, cells, observe, report, try_cache, serve_cached, finish, absorb
    ) -> None:
        """The throughput dispatch (DESIGN.md §14).

        Groups cells by (profile, capacity) and, for groups without a
        prepared state, enforces in the workers (``pipeline_prepare``)
        or serially in the parent — publishing into the shared-memory
        store either way.  As each group's state lands, its cells are
        cache-checked and dispatched *contiguously*: the pool's FIFO
        task queue then keeps consecutive same-group cells on the same
        workers, which is what makes resident devices hit.  A single
        wait-loop interleaves prepare completions and cell completions,
        so early-prepared profiles execute while later ones still
        enforce.
        """
        groups: "OrderedDict[tuple, list]" = OrderedDict()
        for index, cell in enumerate(cells):
            groups.setdefault((cell.profile, cell.capacity), []).append((index, cell))
        if self.share_snapshots and self._store is None:
            self._store = SnapshotStore()
        token = self._store.token if self._store is not None else None
        protect = frozenset(groups)
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            prepare_futures: dict = {}
            cell_futures: dict = {}

            def dispatch_group(group) -> None:
                prep = self._prepared[group]
                dispatched = 0
                for index, cell in groups[group]:
                    key, entry = try_cache(cell, prep)
                    if entry is not None:
                        serve_cached(index, cell, entry)
                        continue
                    if prep.pickled_bytes == 0 and prep.snapshot is not None:
                        prep.pickled_bytes = len(
                            pickle.dumps(prep.snapshot, pickle.HIGHEST_PROTOCOL)
                        )
                    if prep.segment is not None:
                        self.sched.bytes_saved += prep.pickled_bytes
                    else:
                        self.sched.bytes_shipped += prep.pickled_bytes
                    task = _CellTask(
                        cell=cell,
                        fingerprint=prep.fingerprint,
                        segment=prep.segment,
                        snapshot=None if prep.segment is not None else prep.snapshot,
                        warm=self.warm_workers,
                    )
                    cell_futures[pool.submit(_execute_cell_fast, task, observe)] = (
                        index,
                        cell,
                        key,
                    )
                    dispatched += 1
                if dispatched:
                    report(
                        f"running {dispatched} cell(s) for {group[0]} "
                        f"with jobs={self.jobs}"
                    )

            for group, members in groups.items():
                prep = self._prepared.get(group)
                if prep is not None and (
                    prep.segment is not None or prep.snapshot is not None
                ):
                    self._prepared.move_to_end(group)
                    self._publish_group(prep)
                    dispatch_group(group)
                elif self.pipeline_prepare:
                    report(f"preparing enforced state for {group[0]} ...")
                    task = _PrepareTask(
                        profile=group[0],
                        capacity=group[1],
                        enforce=self.enforce,
                        seed=self.enforce_seed,
                        token=token,
                        warm=self.warm_workers,
                    )
                    prepare_futures[pool.submit(_prepare_remote, task, observe)] = group
                else:
                    prep = self._prepared_group(members[0][1], report)
                    self._publish_group(prep)
                    dispatch_group(group)

            while prepare_futures or cell_futures:
                ready, _ = wait(
                    set(prepare_futures) | set(cell_futures),
                    return_when=FIRST_COMPLETED,
                )
                for future in ready:
                    if future in prepare_futures:
                        group = prepare_futures.pop(future)
                        envelope = future.result()
                        absorb(envelope)
                        prep = _PreparedGroup(
                            capacity=envelope["capacity"],
                            fingerprint=envelope["fingerprint"],
                            snapshot=envelope["snapshot"],
                            segment=envelope["segment"],
                            packed_bytes=envelope["packed_bytes"],
                            pickled_bytes=envelope["pickled_bytes"],
                        )
                        if prep.segment is not None and self._store is not None:
                            self._store.adopt(
                                prep.fingerprint, prep.segment, prep.packed_bytes
                            )
                            self.sched.segments_published += 1
                        self._remember_group(group, prep, protect)
                        dispatch_group(group)
                    else:
                        index, cell, key = cell_futures.pop(future)
                        envelope = future.result()
                        absorb(envelope)
                        sched = envelope.get("sched") or {}
                        if sched.get("warm"):
                            self.sched.warm_hits += 1
                        else:
                            self.sched.cold_builds += 1
                        if sched.get("skipped_restore"):
                            self.sched.restores_skipped += 1
                        finish(index, cell, key, envelope)

    # ------------------------------------------------------------------
    # resource management
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release campaign resources: unlink every shared-memory
        snapshot segment this executor published or adopted.

        Idempotent; the executor stays usable (a later ``execute``
        re-publishes what it needs).  Prepared groups that only existed
        as segments are forgotten; those with in-process snapshots keep
        them for sequential reuse.
        """
        if self._store is not None:
            self._store.close()
            self._store = None
        for group in [g for g, p in self._prepared.items() if p.snapshot is None]:
            del self._prepared[group]
        for prep in self._prepared.values():
            prep.segment = None
            prep.packed_bytes = 0

    def __enter__(self) -> "CampaignExecutor":
        """Context-manager support: segments are released on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release shared-memory segments when the ``with`` block ends."""
        self.close()


def results_by_experiment(outcomes: Sequence[CellOutcome]) -> dict[str, ExperimentResult]:
    """Assemble executor outcomes into a campaign's results mapping."""
    return {outcome.cell.experiment: outcome.result() for outcome in outcomes}


def merge_outcome_metrics(outcomes: Sequence[CellOutcome]) -> dict[str, float]:
    """Campaign-wide metrics: the sum of every cell's counter delta.

    Cells without metrics (observability was off when they ran and when
    they were cached) contribute nothing.
    """
    from repro.obs.metrics import merge_counts

    return merge_counts(*(outcome.metrics for outcome in outcomes))


__all__ = [
    "CampaignCell",
    "CampaignExecutor",
    "CellOutcome",
    "Observe",
    "OBSERVE_NOTHING",
    "RunCache",
    "SchedulerStats",
    "merge_outcome_metrics",
    "plan_cells",
    "results_by_experiment",
    "run_cell",
]
