"""Parallel campaign execution with snapshot restore and memoization.

A campaign decomposes into independent *cells* — one (device profile,
experiment) pair each.  Cells share nothing but the enforced initial
state, which the executor builds **once per profile**, snapshots, and
hands to every cell; each cell restores the snapshot onto its own
device and runs with its own target-space allocator.  Because the
simulator is deterministic, the same cell always produces the same
measurements — which buys two things:

* **parallelism** — cells fan out across worker processes
  (``jobs > 1``) and the results are bit-identical to running them
  sequentially (``jobs == 1`` uses the identical per-cell code path,
  inline);
* **memoization** — a :class:`RunCache` stores finished cells on disk
  keyed by (profile, state fingerprint, spec); a repeated campaign
  re-runs zero already-measured cells.

Cells are described by picklable primitives only: experiments hold
pattern-builder closures that cannot cross a process boundary, so
workers rebuild them from the micro-benchmark registry
(:func:`~repro.core.microbench.build_microbenchmark`).  Results travel
as the archive's JSON payloads, which round-trip floats exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.archive import result_from_payload, result_to_payload
from repro.core.experiment import Experiment, ExperimentResult, run_experiment
from repro.core.methodology import StatePool
from repro.core.microbench import BenchContext, build_microbenchmark
from repro.core.plan import TargetAllocator
from repro.errors import ExperimentError, PlanError
from repro.flashsim.profiles import build_device, get_profile
from repro.flashsim.snapshot import DeviceSnapshot
from repro.units import SEC

CACHE_VERSION = 1


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work, in picklable primitives."""

    profile: str
    capacity: int | None
    benchmark: str
    experiment: str
    io_size: int
    io_count: int
    io_ignore: int = 0
    seed: int = 42
    repetitions: int = 1
    pause_usec: float = 1.0 * SEC


@dataclass
class CellOutcome:
    """One executed (or cache-served) cell."""

    cell: CampaignCell
    payload: dict
    cached: bool = False

    def result(self) -> ExperimentResult:
        """The cell's measurements as an :class:`ExperimentResult`."""
        return result_from_payload(self.cell.experiment, self.payload)


def plan_cells(
    profile: str,
    capacity: int | None,
    benchmarks: Sequence[str],
    *,
    io_size: int,
    io_count: int,
    io_ignore: int = 0,
    seed: int = 42,
    repetitions: int = 1,
    pause_usec: float = 1.0 * SEC,
) -> list[CampaignCell]:
    """Enumerate one profile's campaign as cells, one per experiment."""
    resolved = capacity if capacity is not None else get_profile(profile).sim_logical_bytes
    context = BenchContext(
        capacity=resolved,
        io_size=io_size,
        io_count=io_count,
        io_ignore=io_ignore,
        seed=seed,
    )
    cells = []
    for name in benchmarks:
        for experiment in build_microbenchmark(name, context).experiments:
            cells.append(
                CampaignCell(
                    profile=profile,
                    capacity=capacity,
                    benchmark=name,
                    experiment=experiment.name,
                    io_size=io_size,
                    io_count=io_count,
                    io_ignore=io_ignore,
                    seed=seed,
                    repetitions=repetitions,
                    pause_usec=pause_usec,
                )
            )
    return cells


def _cell_experiment(cell: CampaignCell, capacity: int) -> Experiment:
    """Rebuild a cell's experiment from the micro-benchmark registry."""
    context = BenchContext(
        capacity=capacity,
        io_size=cell.io_size,
        io_count=cell.io_count,
        io_ignore=cell.io_ignore,
        seed=cell.seed,
    )
    for experiment in build_microbenchmark(cell.benchmark, context).experiments:
        if experiment.name == cell.experiment:
            return experiment
    raise ExperimentError(
        f"micro-benchmark {cell.benchmark!r} has no experiment {cell.experiment!r}"
    )


def run_cell(cell: CampaignCell, snapshot: DeviceSnapshot) -> dict:
    """Execute one cell from a restored snapshot; returns the payload.

    The single per-cell code path: the sequential executor calls it
    inline, worker processes call it after unpickling their arguments.
    Determinism makes the two executions bit-identical.
    """
    device = build_device(cell.profile, logical_bytes=cell.capacity)
    device.restore(snapshot)
    experiment = _cell_experiment(cell, device.capacity)
    allocator = TargetAllocator(device.capacity, device.geometry.block_size)

    def allocate(spec):
        placed = allocator.place(spec)
        if placed is None:
            # runtime guard, mirroring BenchmarkPlan.execute: restore
            # the enforced state and restart the target space
            device.restore(snapshot)
            allocator.reset()
            placed = allocator.place(spec)
            if placed is None:
                raise PlanError("spec does not fit even on a fresh device")
        return placed

    result = run_experiment(
        device,
        experiment,
        pause_usec=cell.pause_usec,
        repetitions=cell.repetitions,
        allocate=allocate,
    )
    return result_to_payload(result)


# ----------------------------------------------------------------------
# run cache
# ----------------------------------------------------------------------

class RunCache:
    """On-disk memo of executed cells.

    Keys combine the cell description, the *spec digest* (the reprs of
    the actual pattern specs the experiment will run — so a code change
    that alters patterns invalidates entries) and the device-state
    fingerprint.  Entries are JSON files; floats round-trip exactly, so
    a cache hit returns the same numbers the run produced.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(cell: CampaignCell, fingerprint: str, spec_digest: str) -> str:
        """Cache key of one cell under one device state."""
        blob = json.dumps(
            {
                "version": CACHE_VERSION,
                "cell": dataclasses.asdict(cell),
                "fingerprint": fingerprint,
                "specs": spec_digest,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    @staticmethod
    def spec_digest(cell: CampaignCell, capacity: int) -> str:
        """Hash of every spec the cell will execute."""
        experiment = _cell_experiment(cell, capacity)
        hasher = hashlib.sha256()
        hasher.update(experiment.name.encode())
        hasher.update(experiment.parameter.encode())
        for value in experiment.values:
            hasher.update(repr(value).encode())
            hasher.update(repr(experiment.spec_for(value)).encode())
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The memoized payload for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, cell: CampaignCell, payload: dict) -> Path:
        """Store one executed cell's payload under ``key``."""
        entry = {
            "version": CACHE_VERSION,
            "cell": dataclasses.asdict(cell),
            "payload": payload,
        }
        path = self._path(key)
        path.write_text(json.dumps(entry, indent=2))
        return path


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

def _pool_context():
    """Prefer fork on platforms that have it: child processes inherit
    ``sys.path``, so the pool works under test runners that injected
    the package path at runtime."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class CampaignExecutor:
    """Executes campaign cells, optionally in parallel and memoized.

    ``jobs == 1`` runs cells inline; ``jobs > 1`` fans cache misses out
    across a process pool.  Either way every cell starts from the same
    restored snapshot and runs the same code path, so the two modes
    produce identical results.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | str | Path | None = None,
        enforce: bool = True,
        enforce_seed: int = 97,
        state_pool: StatePool | None = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = RunCache(cache) if isinstance(cache, (str, Path)) else cache
        self.enforce = enforce
        self.enforce_seed = enforce_seed
        self._pool = state_pool or StatePool()

    def prepare(self, profile: str, capacity: int | None):
        """Build one profile's device in the enforced state.

        Returns ``(capacity, snapshot, fingerprint)``; the enforcement
        itself is memoized in the executor's :class:`StatePool`, so a
        profile is only ever filled once per executor.
        """
        device = build_device(profile, logical_bytes=capacity)
        if self.enforce:
            state = self._pool.ensure(device, seed=self.enforce_seed)
            return device.capacity, state.snapshot, state.fingerprint
        return device.capacity, device.snapshot(), device.fingerprint()

    def execute(
        self,
        cells: Sequence[CampaignCell],
        status: Callable[[str], None] | None = None,
    ) -> list[CellOutcome]:
        """Run every cell; outcomes come back in the order given."""
        report = status or (lambda message: None)
        outcomes: list[CellOutcome | None] = [None] * len(cells)
        prepared: dict[tuple[str, int | None], tuple[int, DeviceSnapshot, str]] = {}
        pending: list[tuple[int, CampaignCell, DeviceSnapshot, str | None]] = []

        for index, cell in enumerate(cells):
            group = (cell.profile, cell.capacity)
            if group not in prepared:
                report(f"preparing enforced state for {cell.profile} ...")
                prepared[group] = self.prepare(cell.profile, cell.capacity)
            capacity, snapshot, fingerprint = prepared[group]
            key = None
            if self.cache is not None:
                digest = self.cache.spec_digest(cell, capacity)
                key = self.cache.key(cell, fingerprint, digest)
                payload = self.cache.get(key)
                if payload is not None:
                    outcomes[index] = CellOutcome(cell=cell, payload=payload, cached=True)
                    continue
            pending.append((index, cell, snapshot, key))

        if pending:
            report(f"running {len(pending)} cell(s) with jobs={self.jobs}")
        if self.jobs == 1 or len(pending) <= 1:
            executed = [
                (index, cell, key, run_cell(cell, snapshot))
                for index, cell, snapshot, key in pending
            ]
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                futures = [
                    pool.submit(run_cell, cell, snapshot)
                    for _, cell, snapshot, _ in pending
                ]
                executed = [
                    (index, cell, key, future.result())
                    for (index, cell, _, key), future in zip(pending, futures)
                ]

        for index, cell, key, payload in executed:
            outcomes[index] = CellOutcome(cell=cell, payload=payload, cached=False)
            if self.cache is not None and key is not None:
                self.cache.put(key, cell, payload)
        return [outcome for outcome in outcomes if outcome is not None]


def results_by_experiment(outcomes: Sequence[CellOutcome]) -> dict[str, ExperimentResult]:
    """Assemble executor outcomes into a campaign's results mapping."""
    return {outcome.cell.experiment: outcome.result() for outcome in outcomes}


__all__ = [
    "CampaignCell",
    "CampaignExecutor",
    "CellOutcome",
    "RunCache",
    "plan_cells",
    "results_by_experiment",
    "run_cell",
]
