"""Composite workloads for flash-based system design.

The paper's introduction motivates uFLIP with the systems being built
on flash at the time — in-page logging DBMSes, FlashDB's self-tuning
B-trees, flash-aware B-tree layers ([8], [11], [14]) — and its hints
tell their designers which IO patterns to use.  This module expresses
those systems' IO behaviour *in* the uFLIP pattern algebra, so the
benchmark can evaluate algorithm designs, not just devices:

* :func:`oltp_mix` — random page reads with a fraction of page updates;
* :func:`log_structured_writer` — pure sequential appends with wrap;
* :func:`external_sort_merge` — the partitioned run-writing phase;
* :func:`btree_inserts` — random leaf updates confined to a working
  set, plus periodic sequential node splits;
* :func:`wal_commit` — in-place header plus appended records (the
  pathological vs flash-aware variants).

Each builder returns ready-to-execute specs;
:func:`evaluate_workload` runs one against a device and reports
throughput, response time and the physical write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patterns import LocationKind, MixSpec, PatternSpec
from repro.core.runner import execute, execute_mix
from repro.errors import PatternError
from repro.flashsim.device import FlashDevice
from repro.iotypes import Mode
from repro.units import KIB, MIB


def oltp_mix(
    capacity: int,
    page_size: int = 32 * KIB,
    io_count: int = 512,
    reads_per_write: int = 4,
    working_set: int = 0,
    seed: int = 42,
) -> MixSpec:
    """An OLTP-style mix: random page reads with interleaved updates.

    ``working_set`` (0 = the whole store) confines reads *and* writes —
    set it to a few MiB to apply Hint 4.  Reads and writes target
    disjoint halves so the mix obeys the state methodology.
    """
    half = (capacity // 2 // page_size) * page_size
    area = min(working_set, half) if working_set else half
    if area < page_size:
        raise PatternError("working set must hold at least one page")
    reads = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.RANDOM,
        io_size=page_size,
        io_count=io_count,
        target_size=area,
        seed=seed,
    )
    writes = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=page_size,
        io_count=io_count,
        target_offset=half,
        target_size=area,
        seed=seed + 1,
    )
    return MixSpec(
        primary=reads,
        secondary=writes,
        ratio=reads_per_write,
        io_count=io_count,
    )


def log_structured_writer(
    capacity: int,
    record_size: int = 32 * KIB,
    io_count: int = 512,
    log_bytes: int = 0,
) -> PatternSpec:
    """A log-structured store's writer: sequential appends wrapping
    within the log area (Hints 1-3 applied: large aligned appends)."""
    area = (log_bytes or capacity) // record_size * record_size
    if area < record_size:
        raise PatternError("log area must hold at least one record")
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=record_size,
        io_count=io_count,
        target_size=min(area, capacity),
    )


def external_sort_merge(
    capacity: int,
    fan_out: int,
    run_bytes: int = 1 * MIB,
    io_size: int = 32 * KIB,
    io_count: int = 0,
) -> PatternSpec:
    """The merge phase of an external sort writing ``fan_out`` output
    runs round-robin (the paper's own Partitioning example)."""
    if fan_out < 1:
        raise PatternError("fan_out must be >= 1")
    run_bytes = (run_bytes // io_size) * io_size
    target = fan_out * run_bytes
    if target > capacity:
        raise PatternError(
            f"{fan_out} runs of {run_bytes} bytes exceed the device capacity"
        )
    count = io_count or 4 * (target // io_size)  # several laps
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.PARTITIONED,
        io_size=io_size,
        io_count=count,
        target_size=target,
        partitions=fan_out,
    )


def btree_inserts(
    capacity: int,
    page_size: int = 32 * KIB,
    io_count: int = 512,
    leaf_working_set: int = 4 * MIB,
    splits_per_insert_batch: int = 8,
    seed: int = 42,
) -> MixSpec:
    """B-tree inserts on flash: random leaf rewrites within the hot
    working set, with a sequential split/allocation stream on the side
    (the design space of the paper's B-tree references)."""
    half = (capacity // 2 // page_size) * page_size
    area = min(leaf_working_set, half)
    leaves = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=page_size,
        io_count=io_count,
        target_size=area,
        seed=seed,
    )
    splits = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=page_size,
        io_count=io_count,
        target_offset=half,
        target_size=half,
    )
    return MixSpec(
        primary=leaves,
        secondary=splits,
        ratio=splits_per_insert_batch,
        io_count=io_count,
    )


def wal_commit(
    capacity: int,
    flash_aware: bool,
    record_size: int = 4 * KIB,
    io_count: int = 512,
) -> MixSpec:
    """A write-ahead log's commit path.

    Naive: an in-place header rewrite (the Incr = 0 pathology) per
    appended record.  Flash-aware: the header is embedded in a large
    aligned append (Hints 2/3), so both components are sequential.
    """
    half = (capacity // 2 // (32 * KIB)) * 32 * KIB
    if flash_aware:
        records = PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=io_count,
            target_size=half,
        )
        checkpoint = PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=io_count,
            target_offset=half,
            target_size=half,
        )
        return MixSpec(
            primary=records, secondary=checkpoint, ratio=8, io_count=io_count
        )
    records = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.SEQUENTIAL,
        io_size=record_size,
        io_count=io_count,
        target_size=(half // record_size) * record_size,
    )
    header = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.ORDERED,
        incr=0,
        io_size=record_size,
        io_count=io_count,
        target_offset=half,
        target_size=record_size,
    )
    return MixSpec(primary=records, secondary=header, ratio=1, io_count=io_count)


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of evaluating one workload on one device."""

    name: str
    io_count: int
    mean_usec: float
    span_usec: float
    bytes_written: int
    physical_programs: int

    @property
    def mean_msec(self) -> float:
        """Mean response time in milliseconds."""
        return self.mean_usec / 1000.0

    @property
    def throughput_mib_s(self) -> float:
        """Host data written per simulated second (MiB/s)."""
        if self.span_usec <= 0:
            return 0.0
        return (self.bytes_written / MIB) / (self.span_usec / 1_000_000.0)

    @property
    def write_amplification(self) -> float:
        """Physical pages programmed per host page written (copies and
        merges included)."""
        if self.bytes_written == 0:
            return 0.0
        return self.physical_programs / max(1, self.host_pages)

    @property
    def host_pages(self) -> int:
        """Host pages written (the write-amplification denominator)."""
        return self._host_pages

    # set in __post_init__-style via object.__setattr__ in evaluate
    _host_pages: int = 0

    def summary(self) -> str:
        """One-line description of the workload outcome."""
        return (
            f"{self.name}: mean {self.mean_msec:.2f} ms, "
            f"{self.throughput_mib_s:.1f} MiB/s, "
            f"WA~{self.write_amplification:.1f}"
        )


def evaluate_workload(
    device: FlashDevice, name: str, spec: PatternSpec | MixSpec
) -> WorkloadReport:
    """Run a workload and condense the outcome."""
    if isinstance(spec, MixSpec):
        run = execute_mix(device, spec)
        trace = run.trace
        stats = run.stats
    else:
        run = execute(device, spec)
        trace = run.trace
        stats = run.stats
    writes = trace.column("write")
    bytes_written = int(trace.column("size")[writes].sum())
    programs = int(
        trace.column("page_programs").sum()
        + trace.column("copy_programs").sum()
    )
    page_size = device.geometry.page_size
    report = WorkloadReport(
        name=name,
        io_count=len(trace),
        mean_usec=stats.mean_usec,
        span_usec=float(
            trace.column("completed_at")[-1] - trace.column("submitted_at")[0]
        ),
        bytes_written=bytes_written,
        physical_programs=programs,
    )
    object.__setattr__(report, "_host_pages", max(1, bytes_written // page_size))
    return report
