"""Campaign archives: persist, reload and compare benchmark results.

The paper's authors published their results — tens of millions of data
points — at uflip.org for the community to compare against (Sections
1.3 and 6).  This module is the corresponding repository feature: a
campaign (one device's experiment results plus metadata) round-trips
through a JSON archive on disk, an index aggregates the campaigns of a
results directory, and two campaigns can be diffed experiment by
experiment — the comparison a device vendor or system designer would
run between two firmware revisions or two devices.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.experiment import Experiment, ExperimentResult, ExperimentRow
from repro.core.stats import RunStats
from repro.errors import AnalysisError
from repro.flashsim.trace import IOTrace

ARCHIVE_VERSION = 1


@dataclass
class Campaign:
    """One archived benchmarking campaign."""

    device: str
    label: str
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    metadata: dict[str, str] = field(default_factory=dict)

    def experiment_names(self) -> list[str]:
        """Sorted names of the archived experiments."""
        return sorted(self.results)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """The JSON-serialisable form of this campaign."""
        return {
            "version": ARCHIVE_VERSION,
            "device": self.device,
            "label": self.label,
            "metadata": dict(self.metadata),
            "experiments": {
                name: result_to_payload(result)
                for name, result in self.results.items()
            },
        }

    @staticmethod
    def from_payload(payload: dict) -> "Campaign":
        """Rebuild a campaign from :meth:`to_payload` output."""
        version = payload.get("version")
        if version != ARCHIVE_VERSION:
            raise AnalysisError(
                f"unsupported archive version {version!r} "
                f"(this build reads version {ARCHIVE_VERSION})"
            )
        campaign = Campaign(
            device=payload["device"],
            label=payload["label"],
            metadata=dict(payload.get("metadata", {})),
        )
        for name, result_payload in payload["experiments"].items():
            campaign.results[name] = result_from_payload(name, result_payload)
        return campaign

    def save(self, directory: str | Path) -> Path:
        """Write the campaign under ``directory`` and refresh its index."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.label}.json"
        path.write_text(json.dumps(self.to_payload(), indent=2))
        _refresh_index(directory)
        return path

    @staticmethod
    def load(path: str | Path) -> "Campaign":
        """Load a campaign archived with :meth:`save`."""
        return Campaign.from_payload(json.loads(Path(path).read_text()))


def result_to_payload(
    result: ExperimentResult, include_traces: bool = False
) -> dict:
    """JSON-serialisable form of one experiment result.

    Public because the run cache and the campaign worker processes use
    the same representation to transport results: JSON round-trips
    Python floats exactly, so a cached or worker-produced result is
    bit-identical to a freshly computed one.

    ``include_traces`` adds each row's per-repetition traces in their
    columnar form (:meth:`~repro.flashsim.trace.IOTrace.to_payload`) —
    one list per column rather than one object per IO.
    """
    rows = []
    for row in result.rows:
        row_payload = {
            "value": row.value,
            "label": row.label,
            "stats": [
                {
                    "count": stats.count,
                    "ignored": stats.ignored,
                    "min_usec": stats.min_usec,
                    "max_usec": stats.max_usec,
                    "mean_usec": stats.mean_usec,
                    "std_usec": stats.std_usec,
                    "median_usec": stats.median_usec,
                    "p95_usec": stats.p95_usec,
                    "total_usec": stats.total_usec,
                }
                for stats in row.stats
            ],
        }
        if include_traces and row.traces:
            row_payload["traces"] = [
                trace.to_payload() for trace in row.traces
            ]
        rows.append(row_payload)
    return {"parameter": result.experiment.parameter, "rows": rows}


def payload_has_traces(payload: dict) -> bool:
    """Whether a :func:`result_to_payload` payload carries IO traces."""
    return any("traces" in row for row in payload.get("rows", ()))


def payload_has_attribution(payload: dict) -> bool:
    """Whether a payload's traces carry latency-attribution columns.

    True only when every trace in the payload is attributed — a cache
    entry written by a non-attribution campaign must not satisfy an
    attribution campaign's hit.
    """
    traces = [
        trace_payload
        for row in payload.get("rows", ())
        for trace_payload in row.get("traces", ())
    ]
    # an empty trace carries no attribution columns by construction
    return bool(traces) and all(
        "attribution" in t or not t.get("submitted_at") for t in traces
    )


def result_from_payload(name: str, payload: dict) -> ExperimentResult:
    """Rebuild an experiment result from :func:`result_to_payload` output.

    The rebuilt experiment carries results only — its pattern builder
    raises if invoked (archives and caches store measurements, not
    runnable closures).
    """
    values = tuple(row["value"] for row in payload["rows"])
    experiment = Experiment(
        name=name,
        parameter=payload["parameter"],
        values=values,
        build=_unloadable_build,
    )
    result = ExperimentResult(experiment=experiment)
    for row_payload in payload["rows"]:
        row = ExperimentRow(value=row_payload["value"], label=row_payload["label"])
        for stats in row_payload["stats"]:
            row.stats.append(RunStats(**stats))
        for trace_payload in row_payload.get("traces", ()):
            row.traces.append(IOTrace.from_payload(trace_payload))
        result.rows.append(row)
    return result


def _unloadable_build(value):  # pragma: no cover - guard only
    raise AnalysisError(
        "archived experiments carry results, not runnable pattern builders"
    )


# ----------------------------------------------------------------------
# directory index
# ----------------------------------------------------------------------

def _refresh_index(directory: Path) -> Path:
    entries = []
    for path in sorted(directory.glob("*.json")):
        if path.name == "index.json":
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if payload.get("version") != ARCHIVE_VERSION:
            continue
        entries.append(
            {
                "file": path.name,
                "label": payload["label"],
                "device": payload["device"],
                "experiments": sorted(payload["experiments"]),
            }
        )
    index_path = directory / "index.json"
    index_path.write_text(json.dumps({"campaigns": entries}, indent=2))
    return index_path


def list_campaigns(directory: str | Path) -> list[dict]:
    """Entries of a results directory's index (refreshing it first)."""
    index = _refresh_index(Path(directory))
    return json.loads(index.read_text())["campaigns"]


def load_campaigns(directory: str | Path) -> list[Campaign]:
    """Load every campaign archived under ``directory``."""
    directory = Path(directory)
    return [
        Campaign.load(directory / entry["file"])
        for entry in list_campaigns(directory)
    ]


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RowDelta:
    """One parameter value's mean in two campaigns."""

    value: object
    mean_a_usec: float
    mean_b_usec: float

    @property
    def ratio(self) -> float:
        """``b / a`` mean-cost ratio (above 1: ``b`` is slower)."""
        if self.mean_a_usec == 0:
            return float("inf") if self.mean_b_usec else 1.0
        return self.mean_b_usec / self.mean_a_usec


@dataclass(frozen=True)
class ExperimentDelta:
    """One experiment compared across two campaigns."""

    name: str
    rows: tuple[RowDelta, ...]

    @property
    def max_regression(self) -> float:
        """Worst (largest) b/a ratio across the experiment's values."""
        return max((row.ratio for row in self.rows), default=1.0)

    @property
    def max_improvement(self) -> float:
        """Best (smallest) b/a ratio across the experiment's values."""
        return min((row.ratio for row in self.rows), default=1.0)


def compare_campaigns(a: Campaign, b: Campaign) -> list[ExperimentDelta]:
    """Diff two campaigns over their shared experiments and values.

    Ratios are ``b / a`` — above 1 means ``b`` is slower.
    """
    deltas = []
    for name in sorted(set(a.results) & set(b.results)):
        rows_a = {row.value: row for row in a.results[name].rows}
        rows_b = {row.value: row for row in b.results[name].rows}
        shared = [value for value in rows_a if value in rows_b]
        if not shared:
            continue
        deltas.append(
            ExperimentDelta(
                name=name,
                rows=tuple(
                    RowDelta(
                        value=value,
                        mean_a_usec=rows_a[value].mean_usec,
                        mean_b_usec=rows_b[value].mean_usec,
                    )
                    for value in shared
                ),
            )
        )
    return deltas


def render_comparison(
    a: Campaign, b: Campaign, deltas: list[ExperimentDelta]
) -> str:
    """A human-readable comparison report."""
    from repro.core.report import format_table

    lines = [f"{a.label} ({a.device})  vs  {b.label} ({b.device})"]
    rows = []
    for delta in deltas:
        for row in delta.rows:
            rows.append(
                (
                    delta.name,
                    row.value,
                    f"{row.mean_a_usec / 1000:.3f}",
                    f"{row.mean_b_usec / 1000:.3f}",
                    f"x{row.ratio:.2f}",
                )
            )
    lines.append(
        format_table(
            ("experiment", "value", f"{a.label} (ms)", f"{b.label} (ms)", "b/a"),
            rows,
        )
    )
    return "\n".join(lines)
