"""Inter-run interference and pause determination (Section 4.3, Fig 5).

Consecutive runs must not interfere: a device with asynchronous page
reclamation keeps working after a batch of random writes, slowing
subsequent unrelated IOs.  The paper's probe: sequential reads, then a
batch of random writes, then sequential reads again — count how many of
the second batch of reads are affected, take that as a lower bound on
the inter-run pause, and then *significantly overestimate* it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.patterns import LocationKind, PatternSpec
from repro.core.runner import execute
from repro.flashsim.device import FlashDevice
from repro.iotypes import Mode
from repro.units import KIB, SEC


@dataclass(frozen=True)
class PauseDetermination:
    """Result of the SR / RW / SR interference probe."""

    affected_reads: int
    lingering_usec: float
    baseline_read_usec: float
    recommended_pause_usec: float
    reads_before: list[float]
    writes: list[float]
    reads_after: list[float]

    @property
    def interferes(self) -> bool:
        """Whether any lingering effect was observed at all."""
        return self.affected_reads > 0

    def summary(self) -> str:
        """One-line description of the probe outcome."""
        return (
            f"{self.affected_reads} reads affected, lingering "
            f"{self.lingering_usec / SEC:.2f}s -> recommended pause "
            f"{self.recommended_pause_usec / SEC:.1f}s"
        )


def determine_pause(
    device: FlashDevice,
    io_size: int = 32 * KIB,
    reads_before: int = 512,
    write_count: int = 512,
    reads_after: int = 4096,
    slow_factor: float = 1.15,
    min_pause_usec: float = 1.0 * SEC,
    overestimate: float = 2.0,
    seed: int = 11,
) -> PauseDetermination:
    """Run the Figure 5 probe and derive the inter-run pause.

    ``slow_factor`` defines "affected": a read slower than that multiple
    of the first batch's mean.  The recommendation is ``overestimate``
    times the observed lingering duration, floored at
    ``min_pause_usec`` (the paper uses 1 s for unaffected devices and
    5 s for the Mtron's observed 2.5 s).
    """
    capacity = device.capacity
    read_area = (capacity // io_size) * io_size
    common = dict(io_size=io_size, target_size=read_area, seed=seed)
    sr_before = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.SEQUENTIAL,
        io_count=reads_before,
        **common,
    )
    rw_batch = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_count=write_count,
        **common,
    )
    sr_after = PatternSpec(
        mode=Mode.READ,
        location=LocationKind.SEQUENTIAL,
        io_count=reads_after,
        **common,
    )
    before = execute(device, sr_before).trace.response_times()
    writes = execute(device, rw_batch).trace.response_times()
    after_run = execute(device, sr_after)
    after = after_run.trace.response_times()

    baseline = float(np.mean(before))
    affected_mask = np.asarray(after) > baseline * slow_factor
    affected_indexes = np.flatnonzero(affected_mask)
    if affected_indexes.size:
        last_affected = int(affected_indexes[-1])
        affected = last_affected + 1
        lingering = (
            after_run.trace[last_affected].completed_at
            - after_run.trace[0].submitted_at
        )
    else:
        affected = 0
        lingering = 0.0
    recommended = max(min_pause_usec, lingering * overestimate)
    return PauseDetermination(
        affected_reads=affected,
        lingering_usec=lingering,
        baseline_read_usec=baseline,
        recommended_pause_usec=recommended,
        reads_before=before,
        writes=writes,
        reads_after=after,
    )
