"""Result rendering and export.

The paper's results are large (per-IO response times); these helpers
turn runs and experiments into readable tables and portable CSV/JSON so
the benchmark harness can print the same rows/series the paper reports.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.experiment import ExperimentResult
from repro.units import usec_to_msec

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.engine import MixRun


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for row_index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, value_unit: str = "") -> str:
    """One experiment as a table: parameter value vs mean/max response."""
    experiment = result.experiment
    header_value = experiment.parameter + (f" ({value_unit})" if value_unit else "")
    rows = []
    for row in result.rows:
        rows.append(
            (
                row.value,
                row.label,
                f"{row.mean_msec:.3f}",
                f"{usec_to_msec(row.max_usec):.3f}",
            )
        )
    title = f"{experiment.name}  [varying {experiment.parameter}]"
    table = format_table((header_value, "pattern", "mean (ms)", "max (ms)"), rows)
    return f"{title}\n{table}"


def render_series(
    title: str,
    x_label: str,
    series: dict[str, tuple[Sequence[Any], Sequence[float]]],
) -> str:
    """Several (x, y) series as one aligned table — the textual
    equivalent of one of the paper's figures.

    ``series`` maps a series name (e.g. "SR") to (x values, y values in
    ms).  All series must share the same x values.
    """
    if not series:
        return title
    first_x = None
    for __, (xs, __ys) in series.items():
        first_x = list(xs)
        break
    assert first_x is not None
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(first_x):
        row: list[Any] = [x]
        for name in series:
            ys = series[name][1]
            row.append(f"{ys[index]:.3f}" if index < len(ys) else "")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def render_mix_run(run: "MixRun") -> str:
    """One executed mix as a table: overall plus per-component rows.

    A component with no IOs past the warm-up cut has no summary
    (``MixRun`` stats are ``None`` then) and renders as ``n/a`` — it is
    never conflated with the overall statistics.
    """
    rows = []
    for name, spec_label, stats in (
        ("overall", run.spec.label, run.stats),
        ("primary", run.spec.primary.label, run.primary_stats),
        ("secondary", run.spec.secondary.label, run.secondary_stats),
    ):
        if stats is None:
            rows.append((name, spec_label, "0", "n/a", "n/a"))
        else:
            rows.append(
                (
                    name,
                    spec_label,
                    str(stats.count),
                    f"{usec_to_msec(stats.mean_usec):.3f}",
                    f"{usec_to_msec(stats.max_usec):.3f}",
                )
            )
    table = format_table(
        ("component", "pattern", "ios", "mean (ms)", "max (ms)"), rows
    )
    note = ""
    if run.primary_stats is None or run.secondary_stats is None:
        note = "\n(n/a: component has no IOs past io_ignore)"
    return f"mix {run.spec.label}\n{table}{note}"


def experiment_to_csv(result: ExperimentResult) -> str:
    """CSV export: value, label, per-repetition means, averaged mean."""
    lines = ["value,label,mean_usec,max_usec,repetitions"]
    for row in result.rows:
        lines.append(
            f"{row.value},{row.label},{row.mean_usec:.3f},"
            f"{row.max_usec:.3f},{len(row.stats)}"
        )
    return "\n".join(lines) + "\n"


def experiment_to_json(result: ExperimentResult) -> str:
    """JSON export with full per-repetition statistics."""
    payload = {
        "experiment": result.experiment.name,
        "parameter": result.experiment.parameter,
        "rows": [
            {
                "value": row.value,
                "label": row.label,
                "mean_usec": row.mean_usec,
                "repetitions": [
                    {
                        "count": stats.count,
                        "ignored": stats.ignored,
                        "min_usec": stats.min_usec,
                        "max_usec": stats.max_usec,
                        "mean_usec": stats.mean_usec,
                        "std_usec": stats.std_usec,
                    }
                    for stats in row.stats
                ],
            }
            for row in result.rows
        ],
    }
    return json.dumps(payload, indent=2)
