"""``repro.core`` — the uFLIP benchmark (the paper's contribution).

IO pattern algebra (:mod:`~repro.core.patterns`), execution
(:mod:`~repro.core.runner`), the nine micro-benchmarks
(:mod:`~repro.core.microbench`), and the benchmarking methodology:
state enforcement (:mod:`~repro.core.methodology`), two-phase analysis
(:mod:`~repro.core.phases`), interference probing
(:mod:`~repro.core.interference`) and benchmark planning
(:mod:`~repro.core.plan`).
"""

from repro.core.archive import (
    Campaign,
    compare_campaigns,
    list_campaigns,
    load_campaigns,
    payload_has_traces,
    render_comparison,
    result_from_payload,
    result_to_payload,
)
from repro.core.engine import Engine, reseed
from repro.core.autotune import AutotuneResult, autotune_run, confidence_halfwidth
from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    ExperimentRow,
    execute_spec,
    run_experiment,
)
from repro.core.executor import (
    CampaignCell,
    CampaignExecutor,
    CellOutcome,
    RunCache,
    SchedulerStats,
    plan_cells,
    results_by_experiment,
)
from repro.core.generator import IOProgram, MixGenerator, PatternGenerator
from repro.core.interference import PauseDetermination, determine_pause
from repro.core.methodology import (
    EnforcedState,
    StatePool,
    StateReport,
    enforce_random_state,
    enforce_sequential_state,
    recommended_io_count,
    recommended_io_ignore,
    run_control_for,
)
from repro.core.microbench import (
    BASELINE_LABELS,
    MICROBENCHMARKS,
    MIX_COMBOS,
    BenchContext,
    MicroBenchmark,
    build_microbenchmark,
    table1_values,
)
from repro.core.patterns import (
    LocationKind,
    MixSpec,
    ParallelMixSpec,
    ParallelSpec,
    PatternSpec,
    TimingKind,
    baselines,
)
from repro.core.phases import PhaseAnalysis, PhaseProfile, detect_phases, measure_phases
from repro.core.plan import BenchmarkPlan, StateReset, TargetAllocator
from repro.core.report import render_mix_run
from repro.core.replay import ReplayMode, ReplayResult, remap_rows, replay, replay_csv
from repro.core.runner import (
    MixRun,
    ParallelMixRun,
    ParallelRun,
    Run,
    execute,
    execute_mix,
    execute_parallel,
    execute_parallel_mix,
    rest_device,
)
from repro.core.stats import RunStats, converged, running_average, summarize
from repro.core.workloads import (
    WorkloadReport,
    btree_inserts,
    evaluate_workload,
    external_sort_merge,
    log_structured_writer,
    oltp_mix,
    wal_commit,
)

__all__ = [
    "AutotuneResult",
    "BASELINE_LABELS",
    "BenchContext",
    "BenchmarkPlan",
    "Campaign",
    "CampaignCell",
    "CampaignExecutor",
    "CellOutcome",
    "EnforcedState",
    "Engine",
    "Experiment",
    "ExperimentResult",
    "ExperimentRow",
    "IOProgram",
    "LocationKind",
    "MICROBENCHMARKS",
    "MIX_COMBOS",
    "MicroBenchmark",
    "MixGenerator",
    "MixRun",
    "MixSpec",
    "ParallelMixRun",
    "ParallelMixSpec",
    "ParallelRun",
    "ParallelSpec",
    "PatternGenerator",
    "PatternSpec",
    "PauseDetermination",
    "PhaseAnalysis",
    "PhaseProfile",
    "ReplayMode",
    "ReplayResult",
    "Run",
    "RunCache",
    "SchedulerStats",
    "RunStats",
    "StatePool",
    "StateReport",
    "StateReset",
    "TargetAllocator",
    "TimingKind",
    "WorkloadReport",
    "autotune_run",
    "baselines",
    "btree_inserts",
    "build_microbenchmark",
    "compare_campaigns",
    "confidence_halfwidth",
    "converged",
    "detect_phases",
    "determine_pause",
    "enforce_random_state",
    "enforce_sequential_state",
    "evaluate_workload",
    "execute",
    "execute_mix",
    "execute_parallel",
    "execute_parallel_mix",
    "execute_spec",
    "external_sort_merge",
    "list_campaigns",
    "log_structured_writer",
    "load_campaigns",
    "measure_phases",
    "oltp_mix",
    "payload_has_traces",
    "plan_cells",
    "recommended_io_count",
    "recommended_io_ignore",
    "remap_rows",
    "render_comparison",
    "render_mix_run",
    "replay",
    "replay_csv",
    "reseed",
    "rest_device",
    "result_from_payload",
    "result_to_payload",
    "results_by_experiment",
    "run_control_for",
    "run_experiment",
    "running_average",
    "summarize",
    "wal_commit",
]
