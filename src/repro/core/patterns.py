"""IO pattern specifications (Section 3.1, Table 1).

An IO pattern is a sequence of IOs defined by four attribute functions:

* ``t(IOi)`` — submission time: *consecutive*, *pause(Pause)* or
  *burst(Pause, Burst)*;
* ``IOSize(IOi)`` — the identity over the IOSize parameter;
* ``LBA(IOi)`` — *sequential*, *random*, *ordered(Incr)* or
  *partitioned(Partitions)*, aligned to IOSize boundaries relative to
  TargetOffset, optionally shifted by IOShift;
* ``Mode(IOi)`` — the constant read or write.

:class:`PatternSpec` captures one basic pattern with all Table 1
parameters plus the run-control parameters ``io_count`` (pattern
length) and ``io_ignore`` (warm-up IOs excluded from statistics).
:class:`MixSpec` composes two basic patterns with a Ratio;
:class:`ParallelSpec` replicates one baseline over ParallelDegree
processes, splitting the target space (Table 1's Parallelism row).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import PatternError
from repro.iotypes import Mode
from repro.units import KIB


class LocationKind(enum.Enum):
    """The LBA attribute function (Section 3.1)."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"
    ORDERED = "ordered"
    PARTITIONED = "partitioned"


class TimingKind(enum.Enum):
    """The t(IOi) attribute function (Section 3.1)."""

    CONSECUTIVE = "consecutive"
    PAUSE = "pause"
    BURST = "burst"


@dataclass(frozen=True)
class PatternSpec:
    """One basic IO pattern with the Table 1 parameters.

    Sizes and offsets are bytes; times are simulated microseconds.
    ``target_size`` bounds the LBA space of the pattern: sequential and
    ordered locations wrap modulo ``target_size`` (the Locality
    micro-benchmark's definition, which the baselines satisfy trivially
    by choosing ``target_size = io_count * io_size``).
    """

    mode: Mode
    location: LocationKind
    io_size: int = 32 * KIB
    io_count: int = 256
    io_ignore: int = 0
    target_offset: int = 0
    target_size: int = 0  # 0 -> io_count * io_size (sequential baseline)
    io_shift: int = 0
    incr: int = 1
    partitions: int = 1
    timing: TimingKind = TimingKind.CONSECUTIVE
    pause_usec: float = 0.0
    burst: int = 0
    seed: int = 42
    queue_depth: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.io_size <= 0:
            raise PatternError("io_size must be positive")
        if self.queue_depth < 1:
            raise PatternError("queue_depth must be >= 1")
        if self.io_count <= 0:
            raise PatternError("io_count must be positive")
        if not 0 <= self.io_ignore <= self.io_count:
            raise PatternError("io_ignore must be within [0, io_count]")
        if self.target_offset < 0 or self.io_shift < 0:
            raise PatternError("target_offset and io_shift must be non-negative")
        if self.target_size == 0:
            object.__setattr__(self, "target_size", self.io_count * self.io_size)
        if self.target_size < self.io_size:
            raise PatternError("target_size must hold at least one IO")
        if self.target_size % self.io_size != 0:
            raise PatternError("target_size must be a multiple of io_size")
        if self.partitions < 1:
            raise PatternError("partitions must be >= 1")
        if self.location is LocationKind.PARTITIONED:
            if self.target_size % self.partitions != 0:
                raise PatternError("target_size must divide evenly into partitions")
            if (self.target_size // self.partitions) % self.io_size != 0:
                raise PatternError("partition size must be a multiple of io_size")
        if self.timing is TimingKind.PAUSE and self.pause_usec <= 0:
            raise PatternError("pause timing requires a positive pause_usec")
        if self.timing is TimingKind.BURST:
            if self.pause_usec <= 0 or self.burst < 1:
                raise PatternError("burst timing requires pause_usec > 0 and burst >= 1")
        if not self.label:
            object.__setattr__(self, "label", self._default_label())

    def _default_label(self) -> str:
        prefix = {
            LocationKind.SEQUENTIAL: "S",
            LocationKind.RANDOM: "R",
            LocationKind.ORDERED: "O",
            LocationKind.PARTITIONED: "P",
        }[self.location]
        suffix = "R" if self.mode is Mode.READ else "W"
        return prefix + suffix

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def slots(self) -> int:
        """Number of IOSize-aligned slots in the target space."""
        return self.target_size // self.io_size

    @property
    def footprint(self) -> tuple[int, int]:
        """Byte extent ``[start, end)`` the pattern may touch."""
        start = self.target_offset + self.io_shift
        return start, start + self.target_size

    def fits(self, capacity: int) -> bool:
        """Whether the pattern stays within a device of ``capacity``."""
        __, end = self.footprint
        return end <= capacity

    # ------------------------------------------------------------------
    # the LBA attribute function (Table 1 formulas)
    # ------------------------------------------------------------------

    def lba(self, index: int, slot_random: int | None = None) -> int:
        """LBA of the ``index``-th IO.

        ``slot_random`` supplies the draw of ``random(TargetSize/IOSize)``
        for random locations (the generator owns the RNG so that runs
        are reproducible and the formula stays pure).
        """
        base = self.target_offset + self.io_shift
        if self.location is LocationKind.RANDOM:
            if slot_random is None:
                raise PatternError("random location requires a slot draw")
            if not 0 <= slot_random < self.slots:
                raise PatternError(f"slot draw {slot_random} out of range")
            return base + slot_random * self.io_size
        if self.location is LocationKind.SEQUENTIAL:
            return base + (index * self.io_size) % self.target_size
        if self.location is LocationKind.ORDERED:
            return base + (self.incr * index * self.io_size) % self.target_size
        # PARTITIONED (Table 1): PS = TargetSize/Partitions,
        # Pi = i mod Partitions, Oi = floor(i/Partitions)*IOSize mod PS
        partition_size = self.target_size // self.partitions
        which = index % self.partitions
        offset = ((index // self.partitions) * self.io_size) % partition_size
        return base + which * partition_size + offset

    def lba_array(
        self, indexes: np.ndarray, draws: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorised :meth:`lba` over an int64 index array.

        ``draws`` supplies the random slot draws (one per index) for
        random locations.  Python's and numpy's ``%`` agree for the
        positive moduli used here, so each element equals the scalar
        formula exactly.
        """
        base = self.target_offset + self.io_shift
        if self.location is LocationKind.RANDOM:
            if draws is None:
                raise PatternError("random location requires slot draws")
            draws = np.asarray(draws, dtype=np.int64)
            if draws.size and (
                draws.min() < 0 or draws.max() >= self.slots
            ):
                raise PatternError("slot draw out of range")
            return base + draws * self.io_size
        indexes = np.asarray(indexes, dtype=np.int64)
        if self.location is LocationKind.SEQUENTIAL:
            return base + (indexes * self.io_size) % self.target_size
        if self.location is LocationKind.ORDERED:
            return base + (self.incr * indexes * self.io_size) % self.target_size
        partition_size = self.target_size // self.partitions
        which = indexes % self.partitions
        offset = ((indexes // self.partitions) * self.io_size) % partition_size
        return base + which * partition_size + offset

    # ------------------------------------------------------------------
    # the t(IOi) attribute function
    # ------------------------------------------------------------------

    def inter_io_gap(self, index: int) -> float:
        """Pause inserted before the ``index``-th IO (after the previous
        one completes).

        ``consecutive``: none.  ``pause``: Pause before every IO.
        ``burst(Pause, Burst)``: Pause before each group of Burst IOs.
        (Table 1 prints the burst formula as ``(i mod Burst) x Pause``;
        the text — "a pause of length Pause is introduced between groups
        of Burst IOs" — is what we implement.)
        """
        if index == 0:
            return 0.0
        if self.timing is TimingKind.CONSECUTIVE:
            return 0.0
        if self.timing is TimingKind.PAUSE:
            return self.pause_usec
        return self.pause_usec if index % self.burst == 0 else 0.0

    def gap_array(self, count: int) -> np.ndarray:
        """Vectorised :meth:`inter_io_gap` for indexes ``0..count-1``."""
        gaps = np.zeros(count, dtype=np.float64)
        if count == 0 or self.timing is TimingKind.CONSECUTIVE:
            return gaps
        if self.timing is TimingKind.PAUSE:
            gaps[1:] = self.pause_usec
            return gaps
        indexes = np.arange(count)
        gaps[(indexes % self.burst == 0) & (indexes > 0)] = self.pause_usec
        return gaps

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def with_(self, **overrides) -> "PatternSpec":
        """A copy with fields replaced (keeps the frozen spec ergonomic)."""
        if "label" not in overrides:
            overrides["label"] = ""
        return replace(self, **overrides)


@dataclass(frozen=True)
class MixSpec:
    """Two basic patterns composed with a Ratio (Table 1's Mix row).

    ``ratio`` IOs of ``primary`` are issued for every one IO of
    ``secondary``, repeating until ``io_count`` total IOs ran.
    """

    primary: PatternSpec
    secondary: PatternSpec
    ratio: int = 1
    io_count: int = 0  # 0 -> primary.io_count + secondary.io_count
    io_ignore: int = 0
    queue_depth: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        if self.ratio < 1:
            raise PatternError("mix ratio must be >= 1")
        if self.queue_depth < 1:
            raise PatternError("queue_depth must be >= 1")
        if self.primary.queue_depth != 1 or self.secondary.queue_depth != 1:
            raise PatternError(
                "mix components must leave queue_depth at 1; set it on "
                "the MixSpec itself"
            )
        if self.io_count == 0:
            object.__setattr__(
                self, "io_count", self.primary.io_count + self.secondary.io_count
            )
        if self.io_count <= 0:
            raise PatternError("io_count must be positive")
        overlap_start = max(self.primary.footprint[0], self.secondary.footprint[0])
        overlap_end = min(self.primary.footprint[1], self.secondary.footprint[1])
        if overlap_start < overlap_end:
            raise PatternError(
                "mixed patterns must use disjoint target spaces "
                f"(overlap [{overlap_start}, {overlap_end}))"
            )
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"{self.ratio} {self.primary.label} / 1 {self.secondary.label}",
            )

    def component_for(self, index: int) -> int:
        """Which component (0=primary, 1=secondary) issues IO ``index``.

        IOs cycle in groups of ``ratio + 1``: ``ratio`` primaries then
        one secondary.
        """
        return 1 if index % (self.ratio + 1) == self.ratio else 0


@dataclass(frozen=True)
class ParallelSpec:
    """One baseline replicated over ParallelDegree processes.

    Table 1: process ``p`` gets ``TargetOffset_p = p * TargetSize /
    ParallelDegree`` and ``TargetSize_p = TargetSize / ParallelDegree``.
    """

    base: PatternSpec
    parallel_degree: int = 1

    def __post_init__(self) -> None:
        if self.parallel_degree < 1:
            raise PatternError("parallel_degree must be >= 1")
        if self.base.queue_depth != 1:
            raise PatternError(
                "parallel patterns model synchronous processes; the base "
                "spec's queue_depth must stay 1"
            )
        if self.base.target_size % self.parallel_degree != 0:
            raise PatternError("target_size must divide by parallel_degree")
        share = self.base.target_size // self.parallel_degree
        if share < self.base.io_size or share % self.base.io_size != 0:
            raise PatternError(
                "per-process target share must be a non-zero multiple of io_size"
            )

    def process_specs(self) -> list[PatternSpec]:
        """The per-process pattern specs."""
        share = self.base.target_size // self.parallel_degree
        count = max(1, self.base.io_count // self.parallel_degree)
        # the warm-up scales down with the per-process share of the work
        ignore = min(self.base.io_ignore // self.parallel_degree, count - 1)
        specs = []
        for process in range(self.parallel_degree):
            specs.append(
                self.base.with_(
                    target_offset=self.base.target_offset + process * share,
                    target_size=share,
                    io_count=count,
                    io_ignore=ignore,
                    seed=self.base.seed + process,
                    label=f"{self.base.label}[p{process}]",
                )
            )
        return specs

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``SW x4``."""
        return f"{self.base.label} x{self.parallel_degree}"


@dataclass(frozen=True)
class ParallelMixSpec:
    """Different basic patterns run in parallel (Section 3.1's second
    form of parallel pattern: "by mixing, in parallel, different basic
    patterns").

    Unlike :class:`ParallelSpec`, each process runs its *own* spec; the
    specs must occupy disjoint target spaces (like a mix's components).
    """

    components: tuple[PatternSpec, ...]

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise PatternError("a parallel mix needs at least two components")
        if any(component.queue_depth != 1 for component in self.components):
            raise PatternError(
                "parallel patterns model synchronous processes; component "
                "queue_depth must stay 1"
            )
        spans = sorted(component.footprint for component in self.components)
        for (__, end_a), (start_b, __) in zip(spans, spans[1:]):
            if start_b < end_a:
                raise PatternError(
                    "parallel-mix components must use disjoint target spaces"
                )

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``SR || SW``."""
        return " || ".join(component.label for component in self.components)

    @property
    def parallel_degree(self) -> int:
        """Number of concurrent processes (one per component)."""
        return len(self.components)


#: The four baseline patterns of Section 3.1 for a given size/count.
def baselines(
    io_size: int = 32 * KIB,
    io_count: int = 256,
    target_offset: int = 0,
    random_target_size: int = 0,
    sequential_target_size: int = 0,
    seed: int = 42,
    queue_depth: int = 1,
) -> dict[str, PatternSpec]:
    """Build SR, RR, SW, RW baseline specs.

    ``random_target_size`` (0 = ``io_count * io_size``) sets the area the
    random patterns draw from; the paper draws over a large area relative
    to the sequential footprint.  ``sequential_target_size`` (same
    default) bounds the sequential patterns, which wrap modulo the target
    when ``io_count`` exceeds it (needed on small devices).
    ``queue_depth`` > 1 runs the baselines through the async queued host
    (an extension beyond the paper's synchronous methodology).
    """
    rnd_size = random_target_size or io_count * io_size
    seq_size = min(
        sequential_target_size or io_count * io_size, io_count * io_size
    )
    common = dict(
        io_size=io_size,
        io_count=io_count,
        target_offset=target_offset,
        seed=seed,
        queue_depth=queue_depth,
    )
    return {
        "SR": PatternSpec(
            mode=Mode.READ,
            location=LocationKind.SEQUENTIAL,
            target_size=seq_size,
            **common,
        ),
        "RR": PatternSpec(
            mode=Mode.READ, location=LocationKind.RANDOM, target_size=rnd_size, **common
        ),
        "SW": PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            target_size=seq_size,
            **common,
        ),
        "RW": PatternSpec(
            mode=Mode.WRITE, location=LocationKind.RANDOM, target_size=rnd_size, **common
        ),
    }
