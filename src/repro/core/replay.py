"""Trace replay: re-execute an archived IO trace against a device.

The paper publishes per-IO traces (tens of millions of data points) so
others can re-analyse them; replay closes the loop — a trace captured
on one (simulated) device can be driven against another, preserving
either the *arrival pattern* (submit at the recorded times, an open-loop
replay) or the *dependency pattern* (each IO after the previous
completes, a closed-loop replay like the original synchronous host).

This enables what-if runs the paper's Section 5.3 hints motivate:
"what would my workload cost on the Memoright instead of the DTI?"
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.stats import RunStats, summarize
from repro.errors import AnalysisError
from repro.flashsim.device import FlashDevice
from repro.flashsim.trace import IOTrace, TraceRow
from repro.iotypes import IORequest, Mode


class ReplayMode(enum.Enum):
    """How submit times are derived during replay."""

    #: submit at the recorded timestamps, shifted to start at zero — the
    #: workload's own think time is preserved (open loop)
    TIMED = "timed"
    #: each IO submits when the previous completes — the synchronous
    #: closed loop the paper's host used
    CLOSED_LOOP = "closed-loop"


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one trace."""

    mode: ReplayMode
    trace: IOTrace
    stats: RunStats
    original_span_usec: float
    replay_span_usec: float

    @property
    def speedup(self) -> float:
        """Original span / replay span (>1: the target device is faster)."""
        if self.replay_span_usec <= 0:
            return float("inf")
        return self.original_span_usec / self.replay_span_usec


def _requests_from_rows(rows: Sequence[TraceRow]) -> list[IORequest]:
    if not rows:
        raise AnalysisError("cannot replay an empty trace")
    origin = rows[0].submitted_at
    return [
        IORequest(
            index=position,
            lba=row.lba,
            size=row.size,
            mode=row.mode,
            scheduled_at=row.submitted_at - origin,
        )
        for position, row in enumerate(rows)
    ]


def replay(
    device: FlashDevice,
    rows: Sequence[TraceRow],
    mode: ReplayMode = ReplayMode.CLOSED_LOOP,
    io_ignore: int = 0,
) -> ReplayResult:
    """Replay ``rows`` against ``device``.

    Every replayed extent must fit the target device; replaying a trace
    captured on a bigger device onto a smaller one raises (remap the
    LBAs first if that is what you want).
    """
    requests = _requests_from_rows(rows)
    for request in requests:
        if request.lba + request.size > device.capacity:
            raise AnalysisError(
                f"trace extent [{request.lba}, +{request.size}) exceeds the "
                f"target device's capacity {device.capacity}"
            )
    start = device.busy_until
    out = IOTrace()
    now = start
    for request in requests:
        if mode is ReplayMode.TIMED:
            submit_at = max(start + request.scheduled_at, start)
        else:
            submit_at = now
        completed = device.submit(request, submit_at)
        out.append(completed)
        now = completed.completed_at
    stats = summarize(out.response_times(), io_ignore)
    original_span = rows[-1].completed_at - rows[0].submitted_at
    replay_span = out[-1].completed_at - out[0].submitted_at
    return ReplayResult(
        mode=mode,
        trace=out,
        stats=stats,
        original_span_usec=original_span,
        replay_span_usec=replay_span,
    )


def replay_csv(
    device: FlashDevice,
    path: str | Path,
    mode: ReplayMode = ReplayMode.CLOSED_LOOP,
    io_ignore: int = 0,
) -> ReplayResult:
    """Replay a trace archived with :meth:`IOTrace.to_csv`."""
    return replay(device, IOTrace.load_csv(path), mode=mode, io_ignore=io_ignore)


def remap_rows(
    rows: Sequence[TraceRow], target_capacity: int, align: int
) -> list[TraceRow]:
    """Fold a trace's LBAs into a smaller target capacity.

    Extents are wrapped modulo the largest ``align``-aligned prefix of
    the target space; sizes are preserved.  Useful for driving a trace
    captured on a large device against a scaled one — the pattern's
    *locality structure* changes, so treat results as approximate.
    """
    if target_capacity < align or align <= 0:
        raise AnalysisError("target capacity must hold at least one aligned unit")
    usable = (target_capacity // align) * align
    remapped = []
    for row in rows:
        size = min(row.size, usable)
        lba = row.lba % usable
        if lba + size > usable:
            lba = usable - size
        remapped.append(
            TraceRow(
                index=row.index,
                mode=row.mode,
                lba=lba,
                size=size,
                submitted_at=row.submitted_at,
                started_at=row.started_at,
                completed_at=row.completed_at,
                response_usec=row.response_usec,
                page_reads=row.page_reads,
                page_programs=row.page_programs,
                copy_reads=row.copy_reads,
                copy_programs=row.copy_programs,
                block_erases=row.block_erases,
                notes=row.notes,
            )
        )
    return remapped
