"""Unified spec-polymorphic execution engine.

Historically each pattern-spec kind had its own front-end (``execute``,
``execute_mix``, ``execute_parallel``, ``execute_parallel_mix`` in
:mod:`repro.core.runner`) plus matching ``isinstance`` ladders in
:mod:`repro.core.experiment` — five call sites to touch for every new
spec kind, and the ladders drifted out of sync (``ParallelMixSpec``
could be built and run directly but not dispatched or reseeded).

The engine replaces all of that with two registries keyed by spec type:
an *executor* (how to drive the spec against a device) and a *reseeder*
(how to shift its random seeds for a repetition).  ``Engine.run(spec)``
and :func:`reseed` look handlers up through the spec's MRO, so a new
spec kind — even one defined outside this package — registers itself
once with :meth:`Engine.executor` / :meth:`Engine.reseeder` and every
caller (experiments, plans, the campaign executor, the CLI) picks it
up unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.generator import MixGenerator, PatternGenerator
from repro.core.patterns import MixSpec, ParallelMixSpec, ParallelSpec, PatternSpec
from repro.core.stats import RunStats, summarize
from repro.errors import ExperimentError
from repro.flashsim.device import FlashDevice
from repro.flashsim.host import AsyncHost, ParallelHost, SyncHost
from repro.flashsim.trace import IOTrace
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import diff_counts


# ----------------------------------------------------------------------
# run results
# ----------------------------------------------------------------------

class BaseRun:
    """Shared surface of every run result: the spec and its label."""

    spec: Any

    #: per-run device-counter delta (flat ``name -> value`` map), set by
    #: :meth:`Engine.run` when a metrics registry is installed; ``None``
    #: when observability is off.  A plain class attribute rather than a
    #: dataclass field so subclasses with mandatory fields stay valid.
    metrics: dict[str, float] | None = None

    @property
    def label(self) -> str:
        """Human-readable pattern label (e.g. ``SW``, ``2 SR / 1 RW``)."""
        return self.spec.label


@dataclass
class Run(BaseRun):
    """One executed pattern: the spec, the per-IO trace and its summary."""

    spec: PatternSpec
    trace: IOTrace
    stats: RunStats

    def restat(self, io_ignore: int) -> RunStats:
        """Re-summarise with a different warm-up cut (phase analysis)."""
        return summarize(self.trace.response_times(), io_ignore)


@dataclass
class MixRun(Run):
    """One executed mix: overall plus per-component summaries.

    A component summary is ``None`` when that component has no IOs past
    the warm-up cut (``io_ignore``) — e.g. a high Ratio with a short
    run.  It is *not* silently substituted with the overall stats;
    reports render such components as "n/a".
    """

    spec: MixSpec
    primary_stats: RunStats | None
    secondary_stats: RunStats | None


@dataclass
class ParallelRun(BaseRun):
    """One executed parallel pattern: per-process runs plus the merged view."""

    spec: ParallelSpec
    runs: list[Run] = field(default_factory=list)
    stats: RunStats | None = None


@dataclass
class ParallelMixRun(ParallelRun):
    """One executed heterogeneous parallel pattern."""

    spec: "ParallelMixSpec"


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

ExecutorFn = Callable[["Engine", Any, float], BaseRun]
ReseederFn = Callable[[Any, int], Any]


class Engine:
    """Executes any registered pattern-spec kind against one device.

    One engine wraps one :class:`~repro.flashsim.device.FlashDevice`
    plus the per-IO OS overhead; :meth:`run` dispatches on the spec's
    type through the executor registry.

    ``columnar`` selects the recording pipeline: the default drives the
    hosts' program runners, which record scalars straight into columnar
    traces; ``columnar=False`` forces the legacy per-request feed path
    (object construction per IO).  Both produce bit-identical traces
    and statistics — the flag exists for the equivalence suite and the
    hot-path benchmark.
    """

    _executors: dict[type, ExecutorFn] = {}
    _reseeders: dict[type, ReseederFn] = {}

    def __init__(
        self,
        device: FlashDevice,
        os_overhead_usec: float = 0.0,
        columnar: bool = True,
    ) -> None:
        self.device = device
        self.os_overhead_usec = os_overhead_usec
        self.columnar = columnar

    # -- registry ------------------------------------------------------

    @classmethod
    def executor(cls, spec_type: type) -> Callable[[ExecutorFn], ExecutorFn]:
        """Decorator registering the executor for ``spec_type``."""

        def decorate(fn: ExecutorFn) -> ExecutorFn:
            cls._executors[spec_type] = fn
            return fn

        return decorate

    @classmethod
    def reseeder(cls, spec_type: type) -> Callable[[ReseederFn], ReseederFn]:
        """Decorator registering the repetition reseeder for ``spec_type``."""

        def decorate(fn: ReseederFn) -> ReseederFn:
            cls._reseeders[spec_type] = fn
            return fn

        return decorate

    @staticmethod
    def _lookup(registry: dict[type, Callable], spec_type: type, what: str):
        for klass in spec_type.__mro__:
            if klass in registry:
                return registry[klass]
        raise ExperimentError(
            f"no {what} registered for spec type {spec_type.__name__}"
        )

    # -- execution -----------------------------------------------------

    def run(self, spec: Any, start_at: float | None = None) -> BaseRun:
        """Execute ``spec``; returns the matching run object.

        ``start_at`` defaults to the device's current busy horizon so
        successive runs follow each other in simulated time (use
        :func:`rest_device` to model the methodology's inter-run pause).
        """
        handler = self._lookup(self._executors, type(spec), "executor")
        at = self.device.busy_until if start_at is None else start_at
        registry = obs_metrics.current()
        if registry is None and obs_tracing.current() is None:
            return handler(self, spec, at)
        with obs_tracing.span("run", cat="engine", label=spec.label):
            before = self.device.metrics() if registry is not None else None
            result = handler(self, spec, at)
        if registry is not None:
            delta = diff_counts(self.device.metrics(), before)
            result.metrics = delta
            registry.counter("core.engine.runs").inc()
            _sample_queue_metrics(registry, delta)
        return result

    # -- shared plumbing for the built-in executors --------------------

    def _trace_sync(self, generator, at: float) -> IOTrace:
        """Drive one generator through a host.

        Specs with ``queue_depth > 1`` run through the async queued
        host regardless of the ``columnar`` flag (queued submission is
        columnar-only — there is no per-request-object async path);
        everything else takes the synchronous reference host.
        """
        depth = getattr(generator.spec, "queue_depth", 1)
        if depth > 1:
            host = AsyncHost(self.device, os_overhead_usec=self.os_overhead_usec)
            return host.run_program(
                generator.program(), start_at=at, queue_depth=depth
            )
        host = SyncHost(self.device, os_overhead_usec=self.os_overhead_usec)
        if self.columnar:
            return host.run_program(generator.program(), start_at=at)
        completions = host.run(generator, start_at=at)
        trace = IOTrace(capacity=len(completions))
        trace.extend(completions)
        return trace

    def _merge_processes(self, result: ParallelRun, process_specs, at: float):
        """Drive one generator per process and merge the per-process
        traces into ``result`` (stats cover every process past its own
        warm-up — the measurement a synchronous host thread observes)."""
        host = ParallelHost(self.device, os_overhead_usec=self.os_overhead_usec)
        generators = [PatternGenerator(spec, start_at=at) for spec in process_specs]
        if self.columnar:
            traces = host.run_programs(
                [generator.program() for generator in generators], start_at=at
            )
        else:
            traces = []
            for completions in host.run(generators, start_at=at):
                trace = IOTrace(capacity=len(completions))
                trace.extend(completions)
                traces.append(trace)
        measured_chunks = []
        for process_spec, trace in zip(process_specs, traces):
            responses = trace.response_times()
            stats = summarize(responses, process_spec.io_ignore)
            result.runs.append(Run(spec=process_spec, trace=trace, stats=stats))
            measured_chunks.append(np.asarray(responses)[process_spec.io_ignore:])
        result.stats = summarize(np.concatenate(measured_chunks))
        return result


#: bucket bounds of the in-flight-depth histogram (depths, not usec)
QUEUE_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _sample_queue_metrics(registry, delta: dict[str, float]) -> None:
    """Fold a run's queue-counter delta into registry instruments.

    The occupancy gauge is the run's mean in-flight depth while the
    queue was active; the depth histogram counts submissions by the
    depth they observed.  Both derive from the device's monotone
    ``device.queue.*`` samplers, so the per-IO hot path carries no
    instrumentation and a disabled registry costs nothing.
    """
    active = delta.get("device.queue.active_usec", 0.0)
    if active > 0.0:
        depth_time = delta.get("device.queue.depth_time_usec", 0.0)
        registry.gauge("device.queue.occupancy").set(depth_time / active)
    histogram = None
    for name, value in delta.items():
        if not name.startswith("device.queue.at_depth_"):
            continue
        if histogram is None:
            histogram = registry.histogram(
                "device.queue.inflight_depth", QUEUE_DEPTH_BUCKETS
            )
        histogram.observe_many(float(name.rsplit("_", 1)[1]), int(value))


def reseed(spec: Any, bump: int) -> Any:
    """A copy of ``spec`` with random seeds shifted by ``bump``.

    Repetition ``n`` of an experiment runs ``reseed(spec, n)``: the
    simulator is deterministic per seed, so repetitions re-seed the
    random patterns (the paper instead ran everything three times).
    """
    if bump == 0:
        return spec
    handler = Engine._lookup(Engine._reseeders, type(spec), "reseeder")
    return handler(spec, bump)


# ----------------------------------------------------------------------
# built-in executors
# ----------------------------------------------------------------------

@Engine.executor(PatternSpec)
def _execute_pattern(engine: Engine, spec: PatternSpec, at: float) -> Run:
    trace = engine._trace_sync(PatternGenerator(spec, start_at=at), at)
    stats = summarize(trace.response_times(), spec.io_ignore)
    return Run(spec=spec, trace=trace, stats=stats)


@Engine.executor(MixSpec)
def _execute_mix(engine: Engine, spec: MixSpec, at: float) -> MixRun:
    # the warm-up cut (io_ignore) is applied on the mix-level index, as
    # the FlashIO tool scales it for mixed workloads (Section 5.1)
    generator = MixGenerator(spec, start_at=at)
    trace = engine._trace_sync(generator, at)
    responses = np.asarray(trace.response_times())
    stats = summarize(responses, spec.io_ignore)
    # boolean-mask the component schedule instead of a Python loop; a
    # component with no IOs past the warm-up cut reports None (it must
    # not silently inherit the overall stats)
    which = generator.components_array
    measured = np.arange(len(which)) >= spec.io_ignore
    primary = responses[measured & (which == 0)]
    secondary = responses[measured & (which == 1)]
    return MixRun(
        spec=spec,
        trace=trace,
        stats=stats,
        primary_stats=summarize(primary) if primary.size else None,
        secondary_stats=summarize(secondary) if secondary.size else None,
    )


@Engine.executor(ParallelSpec)
def _execute_parallel(engine: Engine, spec: ParallelSpec, at: float) -> ParallelRun:
    return engine._merge_processes(ParallelRun(spec=spec), spec.process_specs(), at)


@Engine.executor(ParallelMixSpec)
def _execute_parallel_mix(
    engine: Engine, spec: ParallelMixSpec, at: float
) -> ParallelMixRun:
    # Section 3.1's second form of parallel pattern: one process per
    # (heterogeneous) component
    return engine._merge_processes(ParallelMixRun(spec=spec), spec.components, at)


# ----------------------------------------------------------------------
# built-in reseeders
# ----------------------------------------------------------------------

@Engine.reseeder(PatternSpec)
def _reseed_pattern(spec: PatternSpec, bump: int) -> PatternSpec:
    return spec.with_(seed=spec.seed + bump)


@Engine.reseeder(MixSpec)
def _reseed_mix(spec: MixSpec, bump: int) -> MixSpec:
    return MixSpec(
        primary=spec.primary.with_(seed=spec.primary.seed + bump),
        secondary=spec.secondary.with_(seed=spec.secondary.seed + bump),
        ratio=spec.ratio,
        io_count=spec.io_count,
        io_ignore=spec.io_ignore,
        queue_depth=spec.queue_depth,
    )


@Engine.reseeder(ParallelSpec)
def _reseed_parallel(spec: ParallelSpec, bump: int) -> ParallelSpec:
    return ParallelSpec(
        base=spec.base.with_(seed=spec.base.seed + bump),
        parallel_degree=spec.parallel_degree,
    )


@Engine.reseeder(ParallelMixSpec)
def _reseed_parallel_mix(spec: ParallelMixSpec, bump: int) -> ParallelMixSpec:
    return ParallelMixSpec(
        components=tuple(
            component.with_(seed=component.seed + bump)
            for component in spec.components
        )
    )


# ----------------------------------------------------------------------
# inter-run pause
# ----------------------------------------------------------------------

def rest_device(device: FlashDevice, pause_usec: float) -> None:
    """Model the methodology's pause between runs (Section 4.3).

    The device is idle for ``pause_usec`` (background reclamation uses
    the gap), and its volatile RAM cache destages — a multi-second pause
    is ample for the couple of megabytes such caches hold, and a real
    write-back cache must destage promptly for durability anyway.
    Deferred FTL merges beyond what the idle credit covers survive the
    pause, exactly like on the paper's Mtron (Figure 5).
    """
    from repro.flashsim.timing import CostAccumulator

    # destage first: the deferred merges the flush creates are then
    # serviced by the idle grant below, like on a resting real device
    scratch = CostAccumulator()
    device.controller.flush_cache(scratch)
    device.idle(device.busy_until + pause_usec)


__all__ = [
    "BaseRun",
    "Engine",
    "MixRun",
    "ParallelMixRun",
    "ParallelRun",
    "QUEUE_DEPTH_BUCKETS",
    "Run",
    "reseed",
    "rest_device",
]
