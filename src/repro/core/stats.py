"""Run statistics (design principle 1, Section 3.2).

For each run the paper records the response time of every IO and
summarises it with min / max / mean / standard deviation, **excluding
the start-up phase** (the first ``IOIgnore`` IOs, Section 4.2).  The
running-average overlays of Figure 3 (including vs excluding the
start-up measurements) are provided for the phase-analysis figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class RunStats:
    """Summary statistics of one run's response times (microseconds)."""

    count: int
    ignored: int
    min_usec: float
    max_usec: float
    mean_usec: float
    std_usec: float
    median_usec: float
    p95_usec: float
    total_usec: float

    @property
    def mean_msec(self) -> float:
        """Mean response time in milliseconds (the figures' unit)."""
        return self.mean_usec / 1000.0

    def summary(self) -> str:
        """One-line description of the run statistics."""
        return (
            f"n={self.count} (ignored {self.ignored}): "
            f"mean={self.mean_usec / 1000:.3f}ms "
            f"min={self.min_usec / 1000:.3f}ms "
            f"max={self.max_usec / 1000:.3f}ms "
            f"std={self.std_usec / 1000:.3f}ms"
        )


def summarize(response_usec: Sequence[float], io_ignore: int = 0) -> RunStats:
    """Summarise response times, dropping the first ``io_ignore`` IOs.

    Raises :class:`~repro.errors.AnalysisError` when nothing remains —
    an underestimated IOCount, exactly the pitfall Section 4.2 warns
    about.
    """
    total = np.asarray(response_usec, dtype=float)
    if total.size == 0:
        raise AnalysisError("cannot summarise an empty run")
    if io_ignore >= total.size:
        raise AnalysisError(
            f"io_ignore={io_ignore} leaves no measurements out of {total.size} "
            "(IOCount too small for this device's start-up phase)"
        )
    kept = total[io_ignore:]
    return RunStats(
        count=int(kept.size),
        ignored=int(io_ignore),
        min_usec=float(kept.min()),
        max_usec=float(kept.max()),
        mean_usec=float(kept.mean()),
        std_usec=float(kept.std()),
        median_usec=float(np.median(kept)),
        p95_usec=float(np.percentile(kept, 95)),
        total_usec=float(total.sum()),
    )


def running_average(response_usec: Sequence[float], skip: int = 0) -> np.ndarray:
    """Running mean of response times, optionally skipping a prefix.

    With ``skip=0`` this is Figure 3's "Avg(rt) incl."; with
    ``skip=io_ignore`` it is "Avg(rt) excl." (aligned to the original
    indexes, NaN over the skipped prefix).
    """
    values = np.asarray(response_usec, dtype=float)
    if skip >= values.size:
        raise AnalysisError("skip leaves no measurements for the running average")
    out = np.full(values.size, np.nan)
    kept = values[skip:]
    out[skip:] = np.cumsum(kept) / np.arange(1, kept.size + 1)
    return out


def converged(response_usec: Sequence[float], io_ignore: int, tolerance: float = 0.05) -> bool:
    """Whether the running mean has converged (Section 4.2's criterion
    for a sufficient IOCount): the mean over the last quarter of the
    kept measurements is within ``tolerance`` of the overall kept mean.
    """
    values = np.asarray(response_usec, dtype=float)[io_ignore:]
    if values.size < 8:
        return False
    overall = values.mean()
    tail = values[-(values.size // 4) :].mean()
    if overall <= 0:
        return tail <= 0
    return abs(tail - overall) / overall <= tolerance


def relative_difference(a: float, b: float) -> float:
    """|a-b| / max(|a|,|b|) — used for the paper's 5% repeatability check."""
    denominator = max(abs(a), abs(b))
    if denominator == 0:
        return 0.0
    return abs(a - b) / denominator
