"""Reference numbers from the paper (Tables 2 and 3, figure anchors).

The benchmark harness prints paper-vs-measured for every reproduced
table and figure; this module is the single source of the paper-side
values.  ``None`` means the paper reports no value (empty cell).

Table 3 legend:

* ``sr/rr/sw/rw`` — response time (ms) of a 32 KiB IO of that pattern;
* ``pause_rw`` — RW cost with pauses inserted (None = pause has no
  effect: no asynchronous reclamation);
* ``locality_mb`` / ``locality_factor`` — size of the area within which
  random writes stay near sequential cost, and the max relative cost
  inside it (None = no locality benefit, printed "No");
* ``partitions`` / ``partitions_factor`` — concurrent sequential
  streams tolerated, and their relative cost;
* ``reverse`` / ``in_place`` / ``large_incr`` — Order micro-benchmark
  costs relative to SW (reverse, in-place) and to RW (large Incr);
  1.0 stands for the paper's "=".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table3Row:
    """One device's row in the paper's Table 3."""

    device: str
    sr: float
    rr: float
    sw: float
    rw: float
    pause_rw: float | None
    locality_mb: float | None
    locality_factor: float | None
    partitions: int
    partitions_factor: float
    reverse: float
    in_place: float
    large_incr: float


#: Table 3 of the paper, keyed by this repo's profile names.
TABLE3: dict[str, Table3Row] = {
    "memoright": Table3Row(
        device="Memoright",
        sr=0.3, rr=0.4, sw=0.3, rw=5.0,
        pause_rw=5.0,
        locality_mb=8.0, locality_factor=1.0,
        partitions=8, partitions_factor=1.0,
        reverse=1.0, in_place=1.0, large_incr=4.0,
    ),
    "mtron": Table3Row(
        device="Mtron",
        sr=0.4, rr=0.5, sw=0.4, rw=9.0,
        pause_rw=9.0,
        locality_mb=8.0, locality_factor=2.0,
        partitions=4, partitions_factor=1.5,
        reverse=1.0, in_place=1.0, large_incr=2.0,
    ),
    "samsung": Table3Row(
        device="Samsung",
        sr=0.5, rr=0.5, sw=0.6, rw=18.0,
        pause_rw=None,
        locality_mb=16.0, locality_factor=1.5,
        partitions=4, partitions_factor=2.0,
        reverse=1.5, in_place=0.6, large_incr=2.0,
    ),
    "transcend_module": Table3Row(
        device="Transcend Module",
        sr=1.2, rr=1.3, sw=1.7, rw=18.0,
        pause_rw=None,
        locality_mb=4.0, locality_factor=2.0,
        partitions=4, partitions_factor=2.0,
        reverse=3.0, in_place=2.0, large_incr=2.0,
    ),
    "transcend32": Table3Row(
        device="Transcend MLC",
        sr=1.4, rr=3.0, sw=2.6, rw=233.0,
        pause_rw=None,
        locality_mb=4.0, locality_factor=1.0,
        partitions=4, partitions_factor=2.0,
        reverse=2.0, in_place=2.0, large_incr=1.0,
    ),
    "kingston_dthx": Table3Row(
        device="Kingston DTHX",
        sr=1.3, rr=1.5, sw=1.8, rw=270.0,
        pause_rw=None,
        locality_mb=16.0, locality_factor=20.0,
        partitions=8, partitions_factor=20.0,
        reverse=7.0, in_place=6.0, large_incr=1.0,
    ),
    "kingston_dti": Table3Row(
        device="Kingston DTI",
        sr=1.9, rr=2.2, sw=2.9, rw=256.0,
        pause_rw=None,
        locality_mb=None, locality_factor=None,
        partitions=4, partitions_factor=5.0,
        reverse=8.0, in_place=40.0, large_incr=1.0,
    ),
}

#: Section 5.1 anchors: per-device start-up and oscillation behaviour.
PHASES = {
    # (io_ignore used by the paper for RW experiments, has start-up phase)
    "memoright": (30, True),
    "mtron": (128, True),
    "samsung": (0, False),
    "transcend_module": (0, False),
    "transcend32": (0, False),
    "kingston_dthx": (0, False),
    "kingston_dti": (0, False),
}

#: Figure 5: the Mtron's random-write after-effect on sequential reads.
FIG5_MTRON = {
    "affected_reads": 3_000,
    "lingering_sec": 2.5,
    "recommended_pause_sec": 5.0,
    "other_devices_pause_sec": 1.0,
}

#: Figure 6 anchors (Memoright granularity): latency per IO, and the
#: observation that small random writes are absorbed (four 4 KiB writes
#: cost about as much as one 16 KiB write).
FIG6_MEMORIGHT = {
    "sr_latency_usec": 70.0,
    "rr_latency_usec": 115.0,
    "large_rw_min_msec": 5.0,
}

#: Figure 7 anchor (Kingston DTI): random writes ~constant.
FIG7_DTI = {"rw_constant_msec": 260.0}

#: Section 5.2: Samsung random writes, aligned vs unaligned (16 KiB).
ALIGNMENT_SAMSUNG = {"aligned_msec": 18.0, "unaligned_msec": 32.0}

#: Section 4.1: Samsung out-of-the-box 16 KiB random writes vs enforced
#: state ("decreased by almost an order of magnitude").
STATE_SAMSUNG = {"out_of_box_msec": 1.0, "enforced_slowdown_min": 5.0}


def table3_devices() -> list[str]:
    """Profile names with a Table 3 row, in the paper's order."""
    return list(TABLE3)
