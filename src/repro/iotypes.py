"""Shared IO value types.

Defined at the package root so both the device simulator
(:mod:`repro.flashsim`) and the benchmark layer (:mod:`repro.core`) can
use them without depending on each other.

An IO is defined by the four attributes of Section 3.1 of the paper:
submit time ``t(IOi)``, size ``IOSize(IOi)``, location ``LBA(IOi)`` and
``Mode(IOi)``.  A completed IO additionally carries its measured
response time ``rt(IOi)`` and the physical work the device performed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flashsim.timing import CostAccumulator


def _empty_cost() -> "CostAccumulator":
    # Deferred import: repro.flashsim.device imports this module, so a
    # module-level import of the timing types would be circular.
    from repro.flashsim.timing import CostAccumulator

    return CostAccumulator()


class Mode(enum.Enum):
    """IO mode: the constant function of Section 3.1."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class IORequest:
    """One IO of a pattern, before execution.

    ``index`` is the position ``i`` in the pattern; ``scheduled_at`` is
    ``t(IOi)`` in simulated microseconds.
    """

    index: int
    lba: int
    size: int
    mode: Mode
    scheduled_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("IO size must be positive")
        if self.lba < 0:
            raise ValueError("LBA must be non-negative")


@dataclass(frozen=True, slots=True)
class CompletedIO:
    """One executed IO with its measured timings.

    ``response_usec`` is completion minus submission — it includes any
    queueing delay behind earlier IOs, which is what a host thread
    issuing synchronous IO observes (and what makes ParallelDegree > 1
    unhelpful on flash, Section 5.2).
    """

    request: IORequest
    submitted_at: float
    started_at: float
    completed_at: float
    cost: "CostAccumulator" = field(repr=False, default_factory=_empty_cost)

    @property
    def response_usec(self) -> float:
        """rt(IOi): completion minus submission, queueing included."""
        return self.completed_at - self.submitted_at

    @property
    def service_usec(self) -> float:
        """Device service time excluding queueing delay."""
        return self.completed_at - self.started_at
