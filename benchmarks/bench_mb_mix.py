"""Mix micro-benchmark (Section 5.2).

Paper observation: *the Mix patterns did not affect significantly the
overall cost of the workloads* — the mixed cost is close to the
ratio-weighted combination of the baselines.  Very different from hard
disks, where mixing patterns thrashes the arm.

Pitfall check (Section 4.2): a read-mostly mix with a short IOCount
only ever sees the cheap start-up random writes and wrongly concludes
that reads absorb the write cost.
"""

import numpy as np

from repro.core import (
    BenchContext,
    baselines,
    build_microbenchmark,
    detect_phases,
    execute,
    execute_mix,
    rest_device,
    run_experiment,
)
from repro.core.microbench import MIX_COMBOS
from repro.core.report import format_table
from repro.units import KIB, SEC

from conftest import ready_device, report


def steady(device, spec):
    run = execute(device, spec)
    responses = np.array(run.trace.response_times())
    cut = detect_phases(responses).startup
    rest_device(device, 30 * SEC)
    return float(responses[cut:].mean())


def test_mix_is_cost_additive(once):
    device = ready_device("mtron")
    half = (device.capacity // 2 // (32 * KIB)) * 32 * KIB
    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=half,
        sequential_target_size=half,
    )
    base_cost = {
        label: steady(device, specs[label].with_(seed=3))
        for label in ("SR", "RR", "SW", "RW")
    }

    def run_mixes():
        rows = []
        for experiment_index, (primary_label, secondary_label) in enumerate(
            MIX_COMBOS
        ):
            for ratio in (1, 4):
                # the FlashIO tool scales IOIgnore and IOCount for mixed
                # workloads (Section 5.1): the rarer component must still
                # get past its own start-up phase
                scale = ratio + 1
                ctx = BenchContext(
                    capacity=device.capacity,
                    io_size=32 * KIB,
                    io_count=scale * 260,
                    io_ignore=scale * 170,
                )
                bench = build_microbenchmark("mix", ctx, ratios=(ratio,))
                experiment = bench.experiments[experiment_index]
                mix = experiment.spec_for(ratio)
                result = execute_mix(device, mix)
                rest_device(device, 30 * SEC)
                expected = (
                    ratio * base_cost[primary_label] + base_cost[secondary_label]
                ) / (ratio + 1)
                rows.append(
                    (
                        f"{ratio} {primary_label} / 1 {secondary_label}",
                        f"{result.stats.mean_usec / 1000:.2f}",
                        f"{expected / 1000:.2f}",
                        f"{result.stats.mean_usec / expected:.2f}",
                    )
                )
        return rows

    rows = once(run_mixes)
    text = format_table(
        ("mix", "measured (ms)", "weighted baselines (ms)", "ratio"), rows
    )
    text += "\npaper: mixes do not significantly affect overall cost"
    report("Mix micro-benchmark: measured vs weighted baselines (Mtron)", text)

    assert len(rows) == 2 * len(MIX_COMBOS)
    ratios = [float(row[3]) for row in rows]
    # every mix within 2x of additive, and most within 50%
    assert all(0.4 <= r <= 2.1 for r in ratios), ratios
    assert np.median(ratios) < 1.5


def test_short_read_mostly_mix_pitfall(once):
    """Section 4.2: Ratio > 4 with IOCount 512 only measures the cheap
    start-up random writes — the write cost seems to vanish."""
    device = ready_device("mtron")
    half = (device.capacity // 2 // (32 * KIB)) * 32 * KIB
    specs = baselines(
        io_size=32 * KIB, io_count=2048,
        random_target_size=half, sequential_target_size=half, seed=9,
    )
    rw_true = steady(device, specs["RW"].with_(io_count=768))

    from repro.core.patterns import MixSpec

    def run_short_mix():
        mix = MixSpec(
            primary=specs["RR"],
            secondary=specs["RW"].with_(target_offset=half),
            ratio=8,
            io_count=512,
        )
        return execute_mix(device, mix)

    result = once(run_short_mix)
    rest_device(device, 60 * SEC)
    seen_write_cost = result.secondary_stats.mean_usec
    text = (
        f"true steady RW cost:            {rw_true / 1000:.2f} ms\n"
        f"RW cost seen by a 512-IO 8:1 read-mostly mix: "
        f"{seen_write_cost / 1000:.2f} ms\n"
        "paper: with Ratio > 4 and IOCount 512 the measurements only\n"
        "capture the initial, very cheap random writes — a trap"
    )
    report("Mix pitfall: short read-mostly mixes underestimate writes", text)
    # the short mix sees less than half the true random-write cost
    assert seen_write_cost < 0.5 * rw_true
