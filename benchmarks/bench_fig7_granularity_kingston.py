"""Figure 7: Granularity micro-benchmark on the Kingston DTI.

Paper observations to reproduce:
1. sequential writes are strongly affected by granularity — smaller
   writes cost significantly *more* per IO than 32 KiB writes (the
   commit-boundary read-modify-write);
2. random writes are roughly constant (~260 ms) at any size and are
   therefore omitted from the paper's figure.
"""

from repro.core import BenchContext, build_microbenchmark, run_experiment
from repro.core.report import render_series
from repro.paperdata import FIG7_DTI
from repro.units import KIB, SEC

from repro.analysis.svg import svg_series

from conftest import ready_device, report, save_svg

SIZES = (2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB)


def test_fig7_granularity_kingston_dti(once):
    device = ready_device("kingston_dti")
    ctx = BenchContext(capacity=device.capacity, io_count=96, seed=42)
    bench = build_microbenchmark("granularity", ctx, sizes=SIZES)

    def run_all():
        series = {}
        for label in ("SR", "RR", "SW", "RW"):
            result = run_experiment(
                device, bench.experiment(label), pause_usec=10 * SEC
            )
            values, means = result.series()
            series[label] = ([v / KIB for v in values], means)
        return series

    series = once(run_all)
    shown = {k: v for k, v in series.items() if k != "RW"}
    text = render_series(
        "response time (ms) vs IOSize (KiB) — RW omitted as in the paper",
        "IOSize",
        shown,
    )
    rw_means = series["RW"][1]
    text += (
        f"\n\nRW (omitted from the figure): "
        + ", ".join(f"{m:.0f}" for m in rw_means)
        + f" ms — paper: roughly constant around {FIG7_DTI['rw_constant_msec']:.0f} ms"
    )
    report("Figure 7: granularity, Kingston DTI (SR, RR, SW)", text)
    save_svg(
        "figure7_dti_granularity",
        svg_series,
        series=shown,
        title="Figure 7: granularity, Kingston DTI (RW omitted)",
        x_label="IOSize (KiB)",
    )

    sw = dict(zip(SIZES, series["SW"][1]))
    # (1) small sequential writes cost far MORE per IO than 32 KiB ones
    assert sw[4 * KIB] > 3 * sw[32 * KIB]
    assert sw[16 * KIB] > 2 * sw[32 * KIB]
    # reads do not show this pathology
    sr = dict(zip(SIZES, series["SR"][1]))
    assert sr[4 * KIB] < sr[32 * KIB]

    # (2) random writes roughly constant at every size
    assert max(rw_means) < 3 * min(rw_means)
    assert min(rw_means) > 20  # hundreds-of-ms class
