"""The IOCount pitfall (Section 4.2).

Paper example: a device whose first 128 random writes are very cheap
and whose running phase oscillates; a run with IOCount = 512 measures
about 25% below the true cost, and shorter runs are worse.  IOIgnore
must cover the start-up phase and IOCount must cover enough periods.
"""

import numpy as np

from repro.core import baselines, detect_phases, execute, run_control_for
from repro.core.report import format_table
from repro.units import KIB

from conftest import ready_device, report


def test_iocount_sensitivity(once):
    device = ready_device("mtron")
    spec = baselines(
        io_size=32 * KIB,
        io_count=2048,
        random_target_size=device.capacity,
    )["RW"]

    run = once(execute, device, spec)
    responses = np.array(run.trace.response_times())
    phases = detect_phases(responses)
    true_mean = float(responses[phases.startup :].mean()) / 1000.0

    rows = []
    errors = {}
    for io_count in (128, 256, 512, 1024, 2048):
        naive = float(responses[:io_count].mean()) / 1000.0
        errors[io_count] = naive / true_mean
        rows.append((io_count, f"{naive:.2f}", f"{100 * (1 - naive / true_mean):.0f}%"))
    text = format_table(
        ("IOCount (no IOIgnore)", "measured mean (ms)", "underestimate"), rows
    )
    io_ignore, io_count = run_control_for(phases.startup, phases.period)
    text += (
        f"\ntrue running-phase mean: {true_mean:.2f} ms "
        f"(startup={phases.startup}, period={phases.period})"
        f"\nmethodology's choice: IOIgnore={io_ignore}, IOCount={io_count}"
        "\npaper: with IOCount=512 the measured time was ~25% low; shorter"
        " experiments are worse"
    )
    report("Section 4.2: the IOCount pitfall (Mtron RW)", text)

    # short runs underestimate badly, and monotonically less so
    assert errors[128] < 0.55
    assert errors[256] < 0.8
    assert errors[128] < errors[512] < errors[2048]
    # the methodology's run control measures within 10% of the truth
    controlled = float(
        responses[io_ignore : max(io_count, io_ignore + 64)].mean()
    ) / 1000.0
    assert abs(controlled - true_mean) / true_mean < 0.25
