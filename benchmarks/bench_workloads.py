"""Application workloads on flash (the systems the paper's intro
motivates: logging DBMSes, B-trees, external sort) — evaluated with the
workload library built on the pattern algebra.
"""

from repro.core import rest_device
from repro.core.report import format_table
from repro.core.workloads import (
    btree_inserts,
    evaluate_workload,
    external_sort_merge,
    log_structured_writer,
    oltp_mix,
    wal_commit,
)
from repro.units import KIB, MIB, SEC

from conftest import ready_device, report


def test_workload_designs_on_high_and_low_end(once):
    def run_all():
        results = {}
        for name in ("mtron", "kingston_dti"):
            device = ready_device(name)
            capacity = device.capacity
            workloads = {
                "log-structured writer": log_structured_writer(
                    capacity, io_count=256
                ),
                "OLTP 3:1, whole store": oltp_mix(
                    capacity, io_count=1280, reads_per_write=3
                ),
                "OLTP 3:1, 4 MiB hot set": oltp_mix(
                    capacity, io_count=1280, reads_per_write=3,
                    working_set=4 * MIB,
                ),
                "sort merge, fan-out 4": external_sort_merge(
                    capacity, fan_out=4, run_bytes=1 * MIB, io_count=256
                ),
                "sort merge, fan-out 32": external_sort_merge(
                    capacity, fan_out=32, run_bytes=256 * KIB, io_count=256
                ),
                "B-tree inserts": btree_inserts(capacity, io_count=320),
                "WAL, naive": wal_commit(capacity, flash_aware=False,
                                         io_count=256),
                "WAL, flash-aware": wal_commit(capacity, flash_aware=True,
                                               io_count=256),
            }
            rows = {}
            for label, spec in workloads.items():
                outcome = evaluate_workload(device, label, spec)
                rows[label] = outcome
                rest_device(device, 30 * SEC)
            results[name] = rows
        return results

    results = once(run_all)
    table = []
    for name, rows in results.items():
        for label, outcome in rows.items():
            table.append(
                (
                    name,
                    label,
                    f"{outcome.mean_msec:.2f}",
                    f"{outcome.throughput_mib_s:.1f}",
                    f"{outcome.write_amplification:.1f}",
                )
            )
    text = format_table(
        ("device", "workload", "mean rt (ms)", "MiB/s", "WA"), table
    )
    text += (
        "\nthe paper's hints, applied: focused working sets, bounded merge"
        "\nfan-out and append-structured logs are the difference between a"
        "\nusable and an unusable design on the same hardware"
    )
    report("Application workloads (library extension)", text)

    for name, rows in results.items():
        # Hint 5: fan-out 4 writes faster per byte than fan-out 32
        assert (
            rows["sort merge, fan-out 4"].throughput_mib_s
            > rows["sort merge, fan-out 32"].throughput_mib_s * 0.9
        ), name
        # flash-aware WAL sustains more log volume than the naive one
        assert (
            rows["WAL, flash-aware"].throughput_mib_s
            > rows["WAL, naive"].throughput_mib_s
        ), name
    # Hint 4 on the Mtron: the focused OLTP variant clearly wins ...
    mtron_gap = (
        results["mtron"]["OLTP 3:1, whole store"].mean_usec
        / results["mtron"]["OLTP 3:1, 4 MiB hot set"].mean_usec
    )
    assert mtron_gap > 1.5
    # ... while the Kingston DTI is the hint's documented exception
    # (Table 3 locality: "No") — focusing buys it almost nothing
    dti_gap = (
        results["kingston_dti"]["OLTP 3:1, whole store"].mean_usec
        / results["kingston_dti"]["OLTP 3:1, 4 MiB hot set"].mean_usec
    )
    assert dti_gap < mtron_gap
