"""Parallelism micro-benchmark (Section 5.2).

Paper observations: *we did not observe any performance improvements
from submitting IOs in parallel* — and a high degree of parallel
sequential writes degenerates to partitioned write patterns, with the
corresponding cost increase.
"""

from repro.core import BenchContext, build_microbenchmark, execute_spec, rest_device
from repro.core.report import format_table
from repro.units import KIB, SEC

from conftest import ready_device, report

DEGREES = (1, 2, 4, 8, 16)


def throughput(parallel_run):
    """Total bytes over total simulated span (MB/s equivalent)."""
    start = min(run.trace[0].submitted_at for run in parallel_run.runs)
    end = max(run.trace[-1].completed_at for run in parallel_run.runs)
    total_bytes = sum(
        completed.request.size for run in parallel_run.runs for completed in run.trace
    )
    return total_bytes / (end - start)  # bytes/usec


def test_parallelism_no_gain_and_sw_degeneration(once):
    device = ready_device("mtron")
    # long runs: each process must outlast the background free-pool
    # head-room, or the degeneration hides in the start-up phase
    ctx = BenchContext(
        capacity=device.capacity, io_size=32 * KIB, io_count=2048,
        io_ignore=640,
    )
    bench = build_microbenchmark("parallelism", ctx, degrees=DEGREES)

    def run_all():
        table = {}
        for label in ("SR", "RR", "SW"):
            experiment = bench.experiment(label)
            rows = []
            for degree in DEGREES:
                result = execute_spec(device, experiment.spec_for(degree))
                rest_device(device, 30 * SEC)
                rows.append(
                    (degree, throughput(result), result.stats.mean_usec / 1000.0)
                )
            table[label] = rows
        return table

    table = once(run_all)
    rows = []
    for label, entries in table.items():
        for degree, tput, mean in entries:
            rows.append((label, degree, f"{tput:.3f}", f"{mean:.2f}"))
    text = format_table(
        ("pattern", "degree", "throughput (B/us)", "mean rt (ms)"), rows
    )
    text += (
        "\npaper: no improvement from parallel IO; parallel sequential "
        "writes degenerate to partitioned patterns"
    )
    report("Parallelism micro-benchmark (Mtron)", text)

    for label in ("SR", "RR"):
        base = table[label][0][1]
        for degree, tput, __ in table[label]:
            # no speedup at any degree (single queue, no seek to hide)
            assert tput <= base * 1.10, (label, degree)
    # sequential writes degenerate: degree 16 >> 4 streams the device
    # can coalesce, so throughput drops well below the solo stream
    sw = {degree: tput for degree, tput, __ in table["SW"]}
    assert sw[16] < 0.6 * sw[1]
    assert sw[2] > 0.5 * sw[1]  # a couple of streams are still fine
