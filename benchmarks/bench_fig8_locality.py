"""Figure 8: Locality — random writes relative to sequential writes as
the target area grows, for the Samsung, Memoright and Mtron SSDs.

Paper observations to reproduce: random writes within a small area cost
nearly the same as sequential writes; the beneficial area and the
factor vary per device (Table 3: Memoright 8 MB, Mtron 8 MB,
Samsung 16 MB); beyond the area the relative cost climbs steeply.
"""

import numpy as np

from repro.analysis import plot_series
from repro.core import (
    BenchContext,
    baselines,
    build_microbenchmark,
    detect_phases,
    execute,
    rest_device,
    run_experiment,
)
from repro.core.report import render_series
from repro.paperdata import TABLE3
from repro.units import KIB, MIB, SEC

from repro.analysis.svg import svg_series

from conftest import ready_device, report, save_svg

MULTIPLIERS = (32, 64, 128, 256, 512, 1024, 2048, 4064)  # x32 KiB -> 1..127 MiB


def sw_steady(device):
    spec = baselines(
        io_size=32 * KIB,
        io_count=256,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )["SW"]
    run = execute(device, spec)
    rest_device(device, 30 * SEC)
    responses = np.array(run.trace.response_times())
    return float(responses.mean()) / 1000.0


def test_fig8_locality_three_ssds(once):
    def run_all():
        series = {}
        for name in ("samsung", "memoright", "mtron"):
            device = ready_device(name)
            sw = sw_steady(device)
            # exclude each run's start-up so the running phase is compared
            run = execute(
                device,
                baselines(
                    io_size=32 * KIB,
                    io_count=512,
                    random_target_size=device.capacity,
                )["RW"],
            )
            startup = detect_phases(run.trace.response_times()).startup
            rest_device(device, 60 * SEC)
            ctx = BenchContext(
                capacity=device.capacity,
                io_count=startup + 192,
                io_ignore=startup + 16,
            )
            multipliers = [
                m for m in MULTIPLIERS if m * 32 * KIB <= device.capacity
            ]
            bench = build_microbenchmark(
                "locality", ctx, multipliers_random=multipliers
            )
            result = run_experiment(
                device, bench.experiment("RW"), pause_usec=10 * SEC
            )
            values, means = result.series()
            series[name] = (
                [v * 32 * KIB / MIB for v in values],
                [mean / sw for mean in means],
            )
        return series

    series = once(run_all)
    text = render_series(
        "RW response time relative to SW, vs TargetSize (MiB)",
        "TargetSize",
        series,
    )
    text += "\n\n" + plot_series(
        series, x_label="TargetSize (MiB)", log_x=True,
        y_label="x SW", title="(log-x view)",
    )
    text += "\npaper Table 3 locality areas: " + ", ".join(
        f"{name}: {TABLE3[name].locality_mb:.0f} MB (x{TABLE3[name].locality_factor:.1f})"
        for name in ("samsung", "memoright", "mtron")
    )
    report("Figure 8: locality, Samsung + Memoright + Mtron", text)
    save_svg(
        "figure8_locality",
        svg_series,
        series=series,
        title="Figure 8: RW cost relative to SW vs TargetSize",
        x_label="TargetSize (MiB)",
        y_label="x SW",
        log_x=True,
    )

    for name, (areas, ratios) in series.items():
        small = ratios[0]  # 1 MiB area
        large = ratios[-1]  # whole device
        # random writes in a small area approach sequential cost ...
        assert small < 4.5, f"{name}: small-area ratio {small}"
        # ... and the benefit erodes as the area grows
        assert large > 2.2 * small, f"{name}: {large} vs {small}"
        # the curve is (weakly) monotone: no area is worse than the max
        assert max(ratios) <= large * 1.35
