"""Table 2: the eleven benchmarked flash devices.

Regenerates the device inventory (brand, model, type, size, price) from
the profile registry and benchmarks building + exercising one device of
each FTL family.
"""

from repro.core.report import format_table
from repro.flashsim import ALL_PROFILES, build_device
from repro.units import KIB, MIB, fmt_size

from conftest import report


def test_table2_inventory(once):
    rows = []
    for profile in ALL_PROFILES:
        if profile.brand == "(synthetic)":
            continue
        rows.append(
            (
                "->" if profile.highlighted else "",
                profile.brand,
                profile.model,
                profile.kind,
                fmt_size(profile.real_capacity),
                f"${profile.price_usd}",
                fmt_size(profile.sim_logical_bytes),
                profile.ftl_kind,
            )
        )
    text = format_table(
        ("", "Brand", "Model", "Type", "Size", "Price", "Sim size", "FTL"),
        rows,
    )
    report("Table 2: selected flash devices (paper capacities, scaled sims)", text)
    assert len(rows) == 11
    assert sum(1 for row in rows if row[0] == "->") == 7

    def build_and_touch():
        for name in ("memoright", "kingston_dti", "ideal_pagemap"):
            device = build_device(name, logical_bytes=8 * MIB)
            device.write(0, 32 * KIB)
        return True

    assert once(build_and_touch)
