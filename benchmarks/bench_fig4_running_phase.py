"""Figure 4: running phase for the Kingston DTI (SW).

The paper's trace shows *no* start-up phase and a periodic oscillation
(about 128 operations on the real device) for sequential writes.
"""

from repro.analysis import plot_trace
from repro.core import baselines, detect_phases, execute
from repro.paperdata import PHASES
from repro.units import KIB

from repro.analysis.svg import svg_trace

from conftest import ready_device, report, save_svg


def test_fig4_dti_sw_running_phase(once):
    device = ready_device("kingston_dti")
    spec = baselines(
        io_size=32 * KIB,
        io_count=320,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )["SW"]

    run = once(execute, device, spec)
    responses = run.trace.response_times()
    phases = detect_phases(responses)

    text = plot_trace(responses, title="rt(IOi), Kingston DTI SW, 32 KiB", height=14)
    text += (
        f"\n\nmeasured: startup={phases.startup}, period={phases.period}, "
        f"levels {phases.cheap_level_usec / 1000:.2f} / "
        f"{phases.expensive_level_usec / 1000:.2f} ms"
        "\npaper:    no start-up phase, period about 128 operations"
        "\n(the simulated period reflects one erase block per "
        f"{device.geometry.block_size // (32 * KIB)} IOs)"
    )
    report("Figure 4: running phase, Kingston DTI SW", text)
    save_svg(
        "figure4_dti_sw",
        svg_trace,
        response_usec=responses,
        title="Figure 4: Kingston DTI SW, running phase",
    )

    paper_ignore, paper_has_startup = PHASES["kingston_dti"]
    assert phases.has_startup == paper_has_startup
    assert paper_ignore == 0
    # the oscillation exists and is periodic
    assert phases.oscillates
    assert phases.period is not None and phases.period >= 2
