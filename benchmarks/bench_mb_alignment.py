"""Alignment micro-benchmark (Section 5.2).

Paper observation: unaligned IO requests cost significantly more on
some devices — on the Samsung SSD, random writes not aligned to its
16 KiB unit go from 18 ms to 32 ms; and Hint 3 says the penalty for
misaligned *sequential* writes on cheap devices is severe.
"""

from repro.core import (
    BenchContext,
    baselines,
    build_microbenchmark,
    detect_phases,
    execute,
    rest_device,
    run_experiment,
)
from repro.core.report import render_series
from repro.paperdata import ALIGNMENT_SAMSUNG
from repro.units import KIB, SEC

from conftest import ready_device, report

SHIFTS = (0, 512, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB)


def test_alignment_samsung(once):
    """Samsung (16 KiB mapping unit): unaligned IOs pay read-modify-
    write of the partially covered units.

    Known deviation (EXPERIMENTS.md): the paper's 18->32 ms penalty on
    *random* writes implies the real FTL's merge count scales with the
    units touched; in this model merges are per-erase-block, so the
    random-write penalty is only the extra program/RMW volume (a few
    percent).  The reads and sequential writes show the mechanism
    cleanly, so those are asserted.
    """
    # a dedicated instance: the shift comparison needs a fixed state,
    # not one inherited from whichever benchmark ran before
    from repro.units import MIB

    device = ready_device("samsung", capacity=64 * MIB)
    ctx = BenchContext(capacity=device.capacity, io_count=128, io_ignore=16)
    bench = build_microbenchmark("alignment", ctx, shifts=SHIFTS)

    def run_both():
        series = {}
        for label in ("SR", "SW"):
            result = run_experiment(
                device, bench.experiment(label), pause_usec=5 * SEC
            )
            values, means = result.series()
            series[label] = (list(values), means)
        return series

    series = once(run_both)
    text = render_series(
        "response time (ms) vs IOShift (bytes)", "IOShift", series
    )
    text += (
        f"\npaper (Samsung, random writes): aligned "
        f"{ALIGNMENT_SAMSUNG['aligned_msec']:.0f} ms -> unaligned "
        f"{ALIGNMENT_SAMSUNG['unaligned_msec']:.0f} ms (x1.8; this model "
        "reproduces the direction, not the magnitude — see EXPERIMENTS.md)"
    )
    report("Alignment: Samsung (16 KiB unit)", text)

    sr = dict(zip(*series["SR"]))
    sw = dict(zip(*series["SW"]))
    # a sub-page shift adds one page read per IO
    assert sr[512] > 1.15 * sr[0]
    # realigning at a unit multiple restores the aligned read cost
    assert sr[16 * KIB] < 1.05 * sr[0]
    # shifted sequential writes pay the RMW volume on every IO
    assert sw[512] > 1.08 * sw[0]


def test_alignment_dti_sequential_writes(once):
    device = ready_device("kingston_dti")
    ctx = BenchContext(capacity=device.capacity, io_count=64)
    bench = build_microbenchmark("alignment", ctx, shifts=(0, 512))

    def run_sw():
        result = run_experiment(device, bench.experiment("SW"), pause_usec=5 * SEC)
        return result.series()

    values, means = once(run_sw)
    by_shift = dict(zip(values, means))
    text = (
        f"SW aligned {by_shift[0]:.2f} ms vs shifted {by_shift[512]:.2f} ms "
        f"(x{by_shift[512] / by_shift[0]:.1f})\n"
        "paper (Hint 3): the penalty paid for lack of alignment is quite severe"
    )
    report("Alignment: Kingston DTI sequential writes", text)
    # off the commit boundary, every IO forces a block copy
    assert by_shift[512] > 5 * by_shift[0]
