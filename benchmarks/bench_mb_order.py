"""Order micro-benchmark (Table 3's last three columns).

Reverse (Incr = −1), in-place (Incr = 0) and large-increment patterns,
relative to sequential/random writes — per device class:

* high-end SSDs absorb reverse and in-place ("=" in Table 3);
* mid-range devices pay x2-x3;
* the block-mapped Kingston DTI pays x8 (reverse) to x40 (in-place).
"""

from repro.analysis.summarize import _allocate_fn, _measure_order
from repro.core import BenchContext, baselines, detect_phases, execute, rest_device
from repro.core.plan import TargetAllocator
from repro.core.report import format_table
from repro.paperdata import TABLE3
from repro.units import KIB, SEC

import numpy as np

from conftest import ready_device, report

DEVICES = ("memoright", "samsung", "transcend_module", "kingston_dti")


def test_order_factors_across_device_classes(once):
    def run_all():
        rows = {}
        for name in DEVICES:
            device = ready_device(name)
            specs = baselines(
                io_size=32 * KIB,
                io_count=512,
                random_target_size=device.capacity,
                sequential_target_size=device.capacity,
            )
            sw_run = execute(device, specs["SW"])
            sw = float(np.mean(sw_run.trace.response_times())) / 1000.0
            rest_device(device, 30 * SEC)
            rw_run = execute(device, specs["RW"])
            responses = np.array(rw_run.trace.response_times())
            startup = detect_phases(responses).startup
            rw = float(responses[startup:].mean()) / 1000.0
            rest_device(device, 30 * SEC)
            ctx = BenchContext(
                capacity=device.capacity,
                io_size=32 * KIB,
                io_count=startup + 208,
                io_ignore=startup + 16,
            )
            allocator = TargetAllocator(device.capacity, device.geometry.block_size)
            rows[name] = _measure_order(device, ctx, allocator, sw, rw)
        return rows

    measured = once(run_all)
    table = []
    for name, (reverse, in_place, large) in measured.items():
        paper = TABLE3[name]
        table.append(
            (
                name,
                f"x{reverse:.1f} (paper x{paper.reverse:.1f})",
                f"x{in_place:.1f} (paper x{paper.in_place:.1f})",
                f"x{large:.1f} (paper x{paper.large_incr:.1f})",
            )
        )
    text = format_table(
        ("device", "reverse vs SW", "in-place vs SW", "large Incr vs RW"), table
    )
    report("Order micro-benchmark: reverse / in-place / large increments", text)

    # high-end absorbs both unusual patterns
    reverse, in_place, __ = measured["memoright"]
    assert reverse < 2.5 and in_place < 2.0
    # Samsung's write cache makes in-place writes cheaper than SW
    assert measured["samsung"][1] < 1.0
    # the IDE module pays a moderate penalty
    assert 1.5 < measured["transcend_module"][0] < 8
    # the block-mapped stick is pathological, in-place worst of all
    dti_reverse, dti_in_place, dti_large = measured["kingston_dti"]
    assert dti_in_place > 20
    assert dti_reverse > 5
    # large increments behave like random writes on low-end devices
    assert 0.5 < dti_large < 2.0
