"""Table 3: the key-characteristics summary for the seven presented
devices, paper-vs-measured, plus the classification of Section 5.3.
"""

from repro.analysis import classify, fingerprint, render_table3, summarize_device
from repro.analysis.classify import DeviceTier, price_performance_note
from repro.flashsim import TABLE3_PROFILES, get_profile
from repro.paperdata import TABLE3

from conftest import ready_device, report


def test_table3_all_seven_devices(once):
    def measure_all():
        summaries = []
        for name in TABLE3_PROFILES:
            device = ready_device(name)
            summaries.append(summarize_device(device, name))
        return summaries

    summaries = once(measure_all)
    text = render_table3(summaries)
    classifications = {s.name: classify(s) for s in summaries}
    text += "\n\nclassification (Section 5.3):\n" + "\n".join(
        f"  {name}: {c.tier.value} ({'; '.join(c.reasons)})"
        for name, c in classifications.items()
    )
    text += "\n\nprice vs performance:\n  " + price_performance_note(
        [(s, get_profile(s.name).price_usd) for s in summaries]
    ).replace("\n", "\n  ")
    identifications = {
        s.name: fingerprint(s)[0].device for s in summaries
    }
    text += "\n\nfingerprint (blind nearest paper device): " + ", ".join(
        f"{name}->{match}" for name, match in identifications.items()
    )
    report("Table 3: result summary (paper rows interleaved)", text)

    by_name = {s.name: s for s in summaries}

    # --- baseline costs land near the paper's (within a factor ~2) ----
    for name, paper in TABLE3.items():
        summary = by_name[name]
        for attribute in ("sr", "rr", "sw", "rw"):
            measured = getattr(summary, attribute)
            expected = getattr(paper, attribute)
            assert expected / 2.2 <= measured <= expected * 2.2, (
                f"{name}.{attribute}: measured {measured:.2f} vs paper {expected}"
            )

    # --- pause column: effect exists exactly where the paper saw it ---
    for name, paper in TABLE3.items():
        has_effect = by_name[name].pause_rw is not None
        assert has_effect == (paper.pause_rw is not None), name

    # --- locality: presence and area within a factor of two -----------
    for name, paper in TABLE3.items():
        summary = by_name[name]
        if paper.locality_mb is None:
            assert summary.locality_mb is None or summary.locality_mb <= 1.0, name
        else:
            assert summary.locality_mb is not None, name
            assert paper.locality_mb / 4 <= summary.locality_mb <= paper.locality_mb * 2.5

    # --- partition limits within one power of two ----------------------
    for name, paper in TABLE3.items():
        measured = by_name[name].partitions
        assert paper.partitions / 2 <= measured <= paper.partitions * 4, name

    # --- ordered patterns: the qualitative gradient --------------------
    # high-end absorbs reverse/in-place; the block-mapped stick does not
    assert by_name["memoright"].in_place < 2.0
    assert by_name["mtron"].reverse < 2.5
    assert by_name["samsung"].in_place < 1.0  # the paper's x0.6
    assert by_name["kingston_dti"].in_place > 20
    assert by_name["kingston_dti"].reverse > 5

    # --- classification reproduces the paper's divide ------------------
    assert classifications["memoright"].tier is DeviceTier.HIGH_END
    assert classifications["mtron"].tier is DeviceTier.HIGH_END
    assert classifications["kingston_dti"].tier is DeviceTier.LOW_END
    assert classifications["transcend32"].tier is DeviceTier.LOW_END
    # price is not always indicative (Section 5.3): some pricier device
    # loses to a cheaper one on random writes
    note = price_performance_note(
        [(s, get_profile(s.name).price_usd) for s in summaries]
    )
    assert "worse random writes" in note
    # fingerprinting (Section 5.2's "coarse categorization"): most
    # devices identify their own paper row blind; every mismatch stays
    # within the same class
    self_identified = sum(
        1 for name, match in identifications.items() if match == name
    )
    assert self_identified >= 4, identifications
