"""FTL design ablation (beyond the paper's experiments).

The paper treats devices as black boxes; the simulator can open them.
Holding the timing model fixed (the Memoright's), swap the FTL family
and compare the four baselines:

* hybrid log-block (what 2008 devices shipped);
* fully page-mapped with greedy GC (the design research assumed);
* strict block-mapping (the USB-stick design).

This quantifies how much of Table 3 is *FTL policy* rather than chip
timing — the central reason the paper warns against modelling devices
as flash chips (Section 1).
"""

import numpy as np

from repro.core import (
    baselines,
    detect_phases,
    enforce_random_state,
    execute,
    rest_device,
)
from repro.core.report import format_table
from repro.flashsim import scaled_profile
from repro.flashsim.ftl.blockmap import BlockMapConfig
from repro.flashsim.ftl.fast import FastConfig
from repro.flashsim.ftl.pagemap import PageMapConfig
from repro.units import KIB, MIB, SEC

from conftest import report

CAPACITY = 32 * MIB


def build_variant(kind: str):
    # no controller RAM cache in any variant: the ablation isolates the
    # FTL policy itself
    from repro.flashsim import ControllerConfig

    bare = ControllerConfig()
    if kind == "hybrid":
        profile = scaled_profile("memoright", controller=bare)
    elif kind == "fast":
        profile = scaled_profile(
            "memoright",
            name="memoright-fast",
            ftl_kind="fast",
            hybrid=None,
            fast=FastConfig(shared_log_blocks=8),
            controller=bare,
        )
    elif kind == "pagemap":
        profile = scaled_profile(
            "memoright",
            name="memoright-pagemap",
            ftl_kind="pagemap",
            hybrid=None,
            pagemap=PageMapConfig(
                gc_low_blocks=4, bg_enabled=True, bg_target_blocks=32
            ),
            controller=bare,
        )
    else:
        profile = scaled_profile(
            "memoright",
            name="memoright-blockmap",
            ftl_kind="blockmap",
            hybrid=None,
            blockmap=BlockMapConfig(replacement_slots=8),
            controller=bare,
        )
    device = profile.build(CAPACITY)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    return device


def steady(device, spec):
    run = execute(device, spec)
    responses = np.array(run.trace.response_times())
    cut = detect_phases(responses).startup
    rest_device(device, 30 * SEC)
    return float(responses[cut:].mean()) / 1000.0


def test_ftl_family_drives_the_write_behaviour(once):
    def run_all():
        from repro.core.patterns import LocationKind, PatternSpec
        from repro.iotypes import Mode

        results = {}
        for kind in ("hybrid", "fast", "pagemap", "blockmap"):
            device = build_variant(kind)
            specs = baselines(
                io_size=32 * KIB,
                io_count=512,
                random_target_size=device.capacity,
                sequential_target_size=device.capacity,
            )
            results[kind] = {
                label: steady(device, spec) for label, spec in specs.items()
            }
            # in-place rewrites of one block (the classic DB page update)
            block = device.geometry.block_size
            execute(
                device,
                PatternSpec(
                    mode=Mode.WRITE,
                    location=LocationKind.SEQUENTIAL,
                    io_size=32 * KIB,
                    io_count=block // (32 * KIB),
                    target_offset=8 * MIB,
                ),
            )
            rest_device(device, 10 * SEC)
            results[kind]["InPlace"] = steady(
                device,
                PatternSpec(
                    mode=Mode.WRITE,
                    location=LocationKind.ORDERED,
                    incr=0,
                    io_size=32 * KIB,
                    io_count=192,
                    target_size=32 * KIB,
                    target_offset=8 * MIB,
                ),
            )
        return results

    results = once(run_all)
    labels = ("SR", "RR", "SW", "RW", "InPlace")
    rows = [
        (kind, *(f"{results[kind][label]:.2f}" for label in labels))
        for kind in results
    ]
    text = format_table(("FTL (same chips/timing)",) + labels, rows)
    text += (
        "\nsame flash, three FTLs: the random-write column is pure policy —"
        "\nexactly why the paper refuses to model devices as flash chips"
    )
    report("Ablation: FTL family vs the four baselines", text)

    # reads barely depend on the FTL
    for label in ("SR", "RR"):
        values = [results[kind][label] for kind in results]
        assert max(values) < 2.5 * min(values)
    # random writes depend enormously on it: the page-mapped design
    # absorbs them far better than the shipped hybrids — the gap the
    # research literature was chasing
    rw = {kind: results[kind]["RW"] for kind in results}
    assert rw["pagemap"] < 0.7 * rw["hybrid"]
    assert rw["blockmap"] > 4 * rw["pagemap"]
    # FAST's shared logs absorb scattered writes by volume, paying at
    # reclamation: wide random writes still beat BAST's per-block logs
    assert rw["fast"] < 1.5 * rw["hybrid"]
    # and in-place rewrites expose the block-mapped design even with
    # fast chips: a near-full block copy per write
    in_place = {kind: results[kind]["InPlace"] for kind in results}
    assert in_place["blockmap"] > 5 * in_place["hybrid"]
    assert in_place["pagemap"] < 2 * results["pagemap"]["SW"]
    # sequential writes are fine everywhere (all three have a cheap path)
    sw = {kind: results[kind]["SW"] for kind in results}
    assert max(sw.values()) < 6 * min(sw.values())
