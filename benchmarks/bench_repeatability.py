"""Repeatability (Section 5.1): *each experiment was run three times; as
the differences in performance were typically within 5%, we report the
average of the three runs.*

Reproduced with the measurement-noise model enabled (deterministic
devices would make the claim vacuous): three repetitions of each
baseline on a jittery Mtron agree within the paper's tolerance, and the
reported average is stable.
"""

from repro.core import baselines, rest_device, run_experiment
from repro.core.experiment import Experiment
from repro.core.report import format_table
from repro.flashsim import NoiseSpec, scaled_profile
from repro.units import KIB, MIB, SEC

from conftest import report


def test_three_runs_agree_within_tolerance(once):
    profile = scaled_profile("mtron", noise=NoiseSpec(jitter=0.02, seed=5))
    device = profile.build(32 * MIB)
    from repro.core import enforce_random_state

    enforce_random_state(device)
    rest_device(device, 60 * SEC)

    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )

    def run_all():
        rows = {}
        for label in ("SR", "RR", "SW"):
            experiment = Experiment(
                name=f"repeat/{label}",
                parameter="repetition",
                values=(label,),
                build=lambda __, spec=specs[label]: spec,
            )
            result = run_experiment(
                device, experiment, pause_usec=30 * SEC, repetitions=3
            )
            rows[label] = result.rows[0]
        return rows

    rows = once(run_all)
    table = []
    for label, row in rows.items():
        means = [stats.mean_usec / 1000 for stats in row.stats]
        spread = (max(means) - min(means)) / min(means)
        table.append(
            (
                label,
                " / ".join(f"{mean:.3f}" for mean in means),
                f"{100 * spread:.1f}%",
                f"{row.mean_msec:.3f}",
            )
        )
    text = format_table(
        ("pattern", "3 runs (ms)", "spread", "reported average (ms)"), table
    )
    text += (
        "\npaper Section 5.1: differences typically within 5%; the average"
        " of the three runs is reported (2% simulated host jitter here)"
    )
    report("Repeatability: three runs per experiment (Section 5.1)", text)

    for label, row in rows.items():
        assert row.repeatable_within(0.05), label
