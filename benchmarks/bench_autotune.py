"""Automatic experiment-length tuning (the paper's Section 6 future
work, implemented): compare the adaptive runner against the paper's
fixed IOCount rule on accuracy and IO budget.
"""

import numpy as np

from repro.core import baselines, detect_phases, execute, rest_device
from repro.core.autotune import autotune_run
from repro.core.methodology import recommended_io_count
from repro.core.report import format_table
from repro.units import KIB, SEC

from conftest import ready_device, report


def test_autotune_vs_fixed_iocount(once):
    device = ready_device("mtron")
    specs = baselines(
        io_size=32 * KIB,
        io_count=1,
        random_target_size=device.capacity,
    )

    # ground truth: a long run, start-up excluded
    truth = {}
    for label in ("SR", "RR", "SW", "RW"):
        long_run = execute(device, specs[label].with_(io_count=2048))
        responses = np.array(long_run.trace.response_times())
        cut = detect_phases(responses).startup
        truth[label] = float(responses[cut:].mean())
        rest_device(device, 60 * SEC)

    def tune_all():
        results = {}
        for label in ("SR", "RR", "SW", "RW"):
            results[label] = autotune_run(
                device, specs[label], relative_ci=0.10
            )
            rest_device(device, 60 * SEC)
        return results

    results = once(tune_all)
    rows = []
    for label, result in results.items():
        fixed = recommended_io_count("SSD", label, scale=1.0)
        error = abs(result.stats.mean_usec - truth[label]) / truth[label]
        rows.append(
            (
                label,
                result.io_count,
                fixed,
                result.io_ignore,
                f"{result.stats.mean_usec / 1000:.3f}",
                f"{truth[label] / 1000:.3f}",
                f"{100 * error:.1f}%",
                "yes" if result.converged else "no",
            )
        )
    text = format_table(
        (
            "pattern",
            "tuned IOCount",
            "paper's fixed",
            "tuned IOIgnore",
            "tuned mean (ms)",
            "true mean (ms)",
            "error",
            "converged",
        ),
        rows,
    )
    text += (
        "\npaper Section 6: '(semi-)automatic tuning of experiment length"
        " ... while minimizing the IOs issued' — implemented here"
    )
    report("Autotune: adaptive IOCount vs the fixed Section 5.1 rule", text)

    for label, result in results.items():
        assert result.converged, label
        error = abs(result.stats.mean_usec - truth[label]) / truth[label]
        assert error < 0.25, (label, error)
    # reads need far fewer IOs than the fixed rule spends
    assert results["SR"].io_count < recommended_io_count("SSD", "SR", scale=1.0)
    assert results["RR"].io_count < recommended_io_count("SSD", "RR", scale=1.0)
    # the random-write run still skips its start-up phase
    assert results["RW"].io_ignore > 0
    # and the adaptive budget undercuts the fixed 5,120-IO rule
    assert results["RW"].io_count < recommended_io_count("SSD", "RW", scale=1.0)
