"""Aging and wear (the paper's footnote 1: *measuring aging is
difficult since reaching the erase limit (with wear leveling) may take
years*) — which is precisely what a simulator can compress.

Projects device lifetime under sustained random-write vs sequential
workloads, and shows that static wear levelling keeps the erase spread
bounded under a hot-spot workload.
"""

from repro.core import baselines, execute, rest_device
from repro.core.report import format_table
from repro.flashsim.wear import project_lifetime, wear_report
from repro.units import KIB, SEC

from conftest import ready_device, report


def test_lifetime_projection_by_workload(once):
    device = ready_device("mtron")

    def project(label):
        spec = baselines(
            io_size=32 * KIB,
            io_count=768,
            random_target_size=device.capacity,
            sequential_target_size=device.capacity,
            seed=23,
        )[label]
        before = wear_report(device)
        run = execute(device, spec)
        after = wear_report(device)
        elapsed = run.trace[-1].completed_at - run.trace[0].submitted_at
        projection = project_lifetime(
            device, before, after, elapsed, 768 * 32 * KIB
        )
        rest_device(device, 60 * SEC)
        return projection, after

    def run_both():
        rw, after_rw = project("RW")
        sw, after_sw = project("SW")
        return rw, sw, after_sw

    rw, sw, wear = once(run_both)
    def tb(projection):
        if projection.projected_bytes == float("inf"):
            return "inf"
        return f"{projection.projected_bytes / (1 << 40):.1f}"

    rows = [
        (
            "sustained RW",
            f"{rw.write_amplification:.2f}",
            f"{rw.erases_per_second:.1f}",
            f"{rw.projected_days:.1f}",
            tb(rw),
        ),
        (
            "sustained SW",
            f"{sw.write_amplification:.2f}",
            f"{sw.erases_per_second:.1f}",
            f"{sw.projected_days:.1f}",
            tb(sw),
        ),
    ]
    text = format_table(
        (
            "workload",
            "write amplification",
            "erases/s",
            "life (days, flat out)",
            "life (TiB written)",
        ),
        rows,
    )
    text += (
        f"\nwear after both runs: {wear.summary()}"
        "\npaper footnote 1: aging 'may take years' to measure on hardware;"
        " the simulator projects it from the counted erases"
    )
    report("Aging: lifetime projection by workload (extension)", text)

    # random writes amplify physical writes (merges) well beyond the
    # host volume; sequential writes stay near WA = 1 (switch merges)
    assert rw.write_amplification > 1.5 * sw.write_amplification
    assert sw.write_amplification < 2.0
    # the random workload visibly ages the worst block ...
    assert rw.worst_block_erases_per_second > 0
    assert 0.01 < rw.projected_days < 10_000
    # ... and per byte of host data (the speed-independent measure) the
    # sequential workload lets the device live several times longer
    assert sw.projected_bytes > 2 * rw.projected_bytes
    # dynamic rotation keeps the wear spread sane
    assert wear.gini < 0.8
