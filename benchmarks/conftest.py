"""Shared infrastructure for the figure/table benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper:
it builds the relevant device(s), runs the uFLIP workload, prints the
same rows/series the paper reports (paper-vs-measured where numbers
exist), asserts the *shape* — who wins, by roughly what factor, where
crossovers fall — and hands one representative run to pytest-benchmark
for timing.

Rendered outputs are also written to ``benchmarks/results/`` so the
figures survive the pytest run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core import StatePool, rest_device
from repro.flashsim import build_device
from repro.flashsim.device import FlashDevice
from repro.units import SEC

RESULTS_DIR = Path(__file__).parent / "results"

_DEVICE_CACHE: dict[str, FlashDevice] = {}
_STATE_POOL = StatePool()


def ready_device(name: str, capacity: int | None = None) -> FlashDevice:
    """A state-enforced device, reset before every benchmark.

    The enforced state is built once per profile (the expensive random
    fill of Section 4.1) and memoized in a :class:`StatePool`; every
    later call snapshot-restores it, so each benchmark starts from the
    *identical* reproducible device state instead of inheriting drift
    from whichever benchmarks ran before it.
    """
    key = f"{name}:{capacity}"
    device = _DEVICE_CACHE.get(key)
    if device is None:
        device = build_device(name, logical_bytes=capacity)
        _DEVICE_CACHE[key] = device
    _STATE_POOL.ensure(device)
    # a long pause before every benchmark: no interference between
    # consecutive benchmarks (Section 4.3)
    rest_device(device, 120 * SEC)
    return device


def report(title: str, text: str) -> None:
    """Print a figure/table reproduction and archive it."""
    banner = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n"
    # write straight to stdout so it shows even under pytest capture -s
    sys.stdout.write(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        title.lower()
        .replace(" ", "_")
        .replace("/", "-")
        .replace("(", "")
        .replace(")", "")
        .replace(":", "")
    )
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def save_svg(name: str, render, **kwargs) -> None:
    """Write an SVG figure into the results directory.

    ``render`` is :func:`repro.analysis.svg.svg_trace` or ``svg_series``;
    kwargs are forwarded.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    render(path=RESULTS_DIR / f"{name}.svg", **kwargs)


@pytest.fixture
def once(benchmark):
    """Run a heavyweight callable exactly once under pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return run
