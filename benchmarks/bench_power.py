"""Energy per IO pattern (the paper's footnote 1: power measurement is
future work — the simulator provides it).

Energy prices the same physical work that determines response time, so
the pattern hierarchy carries over: random writes burn an order of
magnitude more energy per byte than sequential ones on hybrid devices,
and the gap mirrors the Table 3 response-time gap.
"""

from repro.core import baselines, execute, rest_device
from repro.core.report import format_table
from repro.flashsim.power import MLC_POWER, SLC_POWER, measure_run_energy
from repro.units import KIB, MIB, SEC

from conftest import ready_device, report


def test_energy_per_pattern(once):
    def run_all():
        table = {}
        for name, spec in (("mtron", SLC_POWER), ("kingston_dti", MLC_POWER)):
            device = ready_device(name)
            io_count = 384 if name == "mtron" else 128
            specs = baselines(
                io_size=32 * KIB,
                io_count=io_count,
                random_target_size=device.capacity,
                sequential_target_size=device.capacity,
            )
            rows = {}
            for label in ("SR", "RR", "SW", "RW"):
                run = execute(device, specs[label])
                meter = measure_run_energy(run.trace, spec)
                rows[label] = (
                    meter.mean_uj_per_io,
                    meter.uj_per_mib(io_count * 32 * KIB) / 1000.0,  # mJ/MiB
                )
                rest_device(device, 30 * SEC)
            table[name] = rows
        return table

    table = once(run_all)
    rows = []
    for name, patterns in table.items():
        for label, (per_io, per_mib) in patterns.items():
            rows.append((name, label, f"{per_io:.0f}", f"{per_mib:.2f}"))
    text = format_table(
        ("device", "pattern", "uJ per IO", "mJ per MiB"), rows
    )
    text += (
        "\npaper footnote 1: 'measuring power consumption, however, should"
        " be considered in future work' — modelled here from the counted"
        " flash operations"
    )
    report("Energy per IO pattern (extension)", text)

    for name, patterns in table.items():
        # writes burn more than reads; random writes dominate everything
        assert patterns["SW"][0] > patterns["SR"][0]
        assert patterns["RW"][0] > 3 * patterns["SW"][0], name
    # the low-end stick's random writes are energy hogs at another scale
    assert table["kingston_dti"]["RW"][0] > 10 * table["mtron"]["RW"][0]
    # efficiency (energy per byte) tells the same story as response time
    assert table["mtron"]["RW"][1] > 3 * table["mtron"]["SW"][1]
