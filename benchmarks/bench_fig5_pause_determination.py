"""Figure 5: pause determination for the Mtron SSD.

Sequential reads, a batch of random writes, sequential reads again:
on the Mtron the lingering effect of the writes slows roughly 3,000
subsequent reads (~2.5 s), so the paper overestimates its inter-run
pause to 5 s; every other device shows no lingering and gets 1 s.
"""

from repro.analysis import plot_trace
from repro.core import determine_pause
from repro.paperdata import FIG5_MTRON
from repro.units import KIB, SEC

from repro.analysis.svg import svg_trace

from conftest import ready_device, report, save_svg


def test_fig5_mtron_lingering(once):
    device = ready_device("mtron")
    result = once(
        determine_pause,
        device,
        io_size=32 * KIB,
        reads_before=512,
        write_count=512,
        reads_after=8192,
    )
    combined = (
        result.reads_before + result.writes + result.reads_after[:2048]
    )
    text = plot_trace(
        combined,
        title="SR (512) | RW (512) | SR: response times",
        height=14,
    )
    text += (
        f"\n\nmeasured: {result.affected_reads} reads affected, lingering "
        f"{result.lingering_usec / SEC:.2f} s, recommended pause "
        f"{result.recommended_pause_usec / SEC:.1f} s"
        f"\npaper:    ~{FIG5_MTRON['affected_reads']} reads affected, "
        f"~{FIG5_MTRON['lingering_sec']} s, pause set to "
        f"{FIG5_MTRON['recommended_pause_sec']:.0f} s"
    )
    report("Figure 5: pause determination, Mtron", text)
    save_svg(
        "figure5_mtron_probe",
        svg_trace,
        response_usec=combined,
        title="Figure 5: SR | RW | SR probe, Mtron",
    )

    assert result.interferes
    # same order of magnitude as the paper's 3,000 reads / 2.5 s
    assert 300 <= result.affected_reads <= 8000
    assert 0.1 * SEC <= result.lingering_usec <= 10 * SEC
    assert result.recommended_pause_usec >= 2 * result.lingering_usec


def test_fig5_other_devices_do_not_linger(once):
    device = ready_device("kingston_dti")
    result = once(
        determine_pause,
        device,
        io_size=32 * KIB,
        reads_before=128,
        write_count=128,
        reads_after=512,
    )
    text = (
        f"Kingston DTI: {result.affected_reads} reads affected -> pause "
        f"{result.recommended_pause_usec / SEC:.1f} s\n"
        f"paper: no lingering on the other ten devices; pause set to 1 s"
    )
    report("Figure 5 (control): no lingering without async reclamation", text)
    assert result.affected_reads <= 1
    assert result.recommended_pause_usec == 1.0 * SEC
