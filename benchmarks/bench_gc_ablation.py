"""GC-policy ablation on the page-mapped FTL: greedy vs cost-benefit.

DESIGN.md calls out victim selection as a design choice worth ablating:
greedy minimises copies *now*; the LFS cost-benefit policy pays a few
copies to relocate old cold blocks, buying a flatter wear distribution
— the lifetime lever of the wear extension.
"""

import random

from repro.core.report import format_table
from repro.flashsim import scaled_profile
from repro.flashsim.ftl.pagemap import PageMapConfig
from repro.flashsim.wear import wear_report
from repro.iotypes import IORequest, Mode
from repro.units import KIB, MIB

from conftest import report

CAPACITY = 16 * MIB


def run_hot_cold(policy: str):
    profile = scaled_profile(
        "ideal_pagemap",
        name=f"pagemap-{policy}",
        pagemap=PageMapConfig(gc_low_blocks=4, gc_policy=policy),
    )
    device = profile.build(CAPACITY)
    now = 0.0
    index = 0
    # cold fill
    for lba in range(0, CAPACITY, 32 * KIB):
        done = device.submit(IORequest(index, lba, 32 * KIB, Mode.WRITE), now)
        now, index = done.completed_at, index + 1
    # hot spot: hammer the first 10%
    rng = random.Random(3)
    hot_slots = CAPACITY // 10 // (32 * KIB)
    responses = []
    for __ in range(3 * CAPACITY // (32 * KIB)):
        lba = rng.randrange(hot_slots) * 32 * KIB
        done = device.submit(IORequest(index, lba, 32 * KIB, Mode.WRITE), now)
        responses.append(done.response_usec)
        now, index = done.completed_at, index + 1
    device.check_invariants()
    wear = wear_report(device)
    mean_ms = sum(responses) / len(responses) / 1000.0
    return mean_ms, wear


def test_gc_policy_trade_off(once):
    def run_both():
        return {policy: run_hot_cold(policy) for policy in ("greedy", "cost-benefit")}

    results = once(run_both)
    rows = [
        (
            policy,
            f"{mean_ms:.3f}",
            f"{wear.gini:.3f}",
            f"{wear.max_erases}",
            f"{wear.std_erases:.1f}",
        )
        for policy, (mean_ms, wear) in results.items()
    ]
    text = format_table(
        ("GC policy", "hot-spot mean rt (ms)", "wear gini", "max erases",
         "erase stddev"),
        rows,
    )
    text += (
        "\ngreedy minimises copies now; cost-benefit relocates old cold"
        "\nblocks — slightly dearer writes, flatter wear, longer life"
    )
    report("Ablation: GC victim policy (page-mapped FTL)", text)

    greedy_ms, greedy_wear = results["greedy"]
    cb_ms, cb_wear = results["cost-benefit"]
    # the performance cost of cost-benefit stays small ...
    assert cb_ms < greedy_ms * 1.5
    # ... and the wear distribution is measurably flatter
    assert cb_wear.std_erases < greedy_wear.std_erases
    assert cb_wear.max_erases <= greedy_wear.max_erases
