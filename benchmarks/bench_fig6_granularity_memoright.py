"""Figure 6: Granularity micro-benchmark on the Memoright SSD.

Paper observations to reproduce:
1. reads and sequential writes are efficient — response time linear in
   IOSize with a small per-IO latency (~70 us SR/SW, ~115 us RR);
2. large random writes are much more expensive (>= 5 ms);
3. small random writes are absorbed by caching: four 4 KiB writes cost
   about as much as one 16 KiB write.
"""

import numpy as np

from repro.analysis import plot_series
from repro.core import BenchContext, build_microbenchmark, run_experiment
from repro.core.report import render_series
from repro.paperdata import FIG6_MEMORIGHT
from repro.units import KIB, SEC

from repro.analysis.svg import svg_series

from conftest import ready_device, report, save_svg

SIZES = (2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB,
         128 * KIB, 256 * KIB, 512 * KIB)


def test_fig6_granularity_memoright(once):
    device = ready_device("memoright")
    ctx = BenchContext(
        capacity=device.capacity, io_count=160, io_ignore=32, seed=42
    )
    bench = build_microbenchmark("granularity", ctx, sizes=SIZES)

    def run_all():
        from repro.core import execute

        series = {}
        for label in ("SR", "RR", "SW"):
            result = run_experiment(
                device, bench.experiment(label), pause_usec=30 * SEC
            )
            values, means = result.series()
            series[label] = ([v / KIB for v in values], means)
        # RW rows run back to back (ascending size, no inter-run pause):
        # resting would replenish the free pool and every row would
        # measure only its start-up phase (the Section 4.2 pitfall).
        # The small rows still show the cache absorption — that effect
        # is state-independent.
        experiment = bench.experiment("RW")
        means = []
        for value in experiment.values:
            run = execute(device, experiment.spec_for(value))
            means.append(run.stats.mean_usec / 1000.0)
        series["RW"] = ([v / KIB for v in experiment.values], means)
        return series

    series = once(run_all)
    text = render_series(
        "response time (ms) vs IOSize (KiB)", "IOSize", series
    )
    text += "\n\n" + plot_series(
        series, x_label="IOSize (KiB)", log_y=True, title="(log-scale view)"
    )
    report("Figure 6: granularity, Memoright", text)
    save_svg(
        "figure6_memoright_granularity",
        svg_series,
        series=series,
        title="Figure 6: granularity, Memoright",
        x_label="IOSize (KiB)",
        log_y=True,
    )

    sr_sizes, sr_means = series["SR"]
    rr_means = series["RR"][1]
    sw_means = series["SW"][1]
    rw_means = series["RW"][1]

    # (1) reads/SW linear with small latency: cost(64K) < 2.5 x cost(32K)
    index32, index64 = SIZES.index(32 * KIB), SIZES.index(64 * KIB)
    for means in (sr_means, rr_means, sw_means):
        assert means[index64] < 2.5 * means[index32]
    # per-IO latency exists: 2K read far above the linear extrapolation
    assert sr_means[0] > sr_means[index32] / 8
    # RR pays the map-lookup latency over SR (paper: 115 vs 70 us)
    assert rr_means[0] > sr_means[0]

    # (2) large random writes at least 5 ms-class and >> SW
    assert rw_means[-1] >= FIG6_MEMORIGHT["large_rw_min_msec"] * 0.5
    assert rw_means[index32] > 4 * sw_means[index32]

    # (3) small random writes absorbed by caching: they cost about as
    # much as small random *reads* (no reclamation penalty at all),
    # while 32 KiB random writes pay the full merge cost
    index4 = SIZES.index(4 * KIB)
    assert rw_means[index4] < 1.5 * rr_means[index4]
    assert rw_means[index32] > 5 * rw_means[index4]
