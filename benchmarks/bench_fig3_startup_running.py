"""Figure 3: start-up and running phase for the Mtron SSD (RW).

The paper's trace shows ~125 cheap random writes (the start-up phase),
then oscillation between cheap writes and expensive reclamation, and
two running-average overlays: including vs excluding the start-up
measurements.
"""

import numpy as np

from repro.analysis import plot_trace
from repro.core import baselines, detect_phases, execute, running_average
from repro.paperdata import PHASES
from repro.units import KIB

from repro.analysis.svg import svg_trace

from conftest import once, ready_device, report, save_svg


def test_fig3_mtron_rw_phases(once):
    device = ready_device("mtron")
    spec = baselines(
        io_size=32 * KIB,
        io_count=320,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )["RW"]

    run = once(execute, device, spec)
    responses = run.trace.response_times()
    phases = detect_phases(responses)
    incl = running_average(responses)
    excl = running_average(responses, skip=phases.startup)

    text = plot_trace(responses, title="rt(IOi), Mtron RW, 32 KiB", height=14)
    text += (
        f"\n\nmeasured: startup={phases.startup} IOs, period={phases.period}, "
        f"cheap={phases.cheap_level_usec / 1000:.2f} ms, "
        f"expensive={phases.expensive_level_usec / 1000:.2f} ms"
        f"\npaper:    startup~=125 IOs (IOIgnore=128), period of tens of IOs"
        f"\nAvg(rt) incl. startup at IO 300: {incl[-1] / 1000:.2f} ms"
        f"\nAvg(rt) excl. startup at IO 300: {excl[-1] / 1000:.2f} ms"
    )
    report("Figure 3: start-up and running phase, Mtron RW", text)
    save_svg(
        "figure3_mtron_rw",
        svg_trace,
        response_usec=responses,
        title="Figure 3: Mtron RW, start-up and running phase",
    )

    paper_ignore, paper_has_startup = PHASES["mtron"]
    assert phases.has_startup == paper_has_startup
    # within a factor of two of the paper's IOIgnore choice
    assert paper_ignore / 2 <= phases.startup <= paper_ignore * 2.5
    assert phases.oscillates
    # excluding the start-up gives the faster, more accurate estimate
    assert excl[-1] > incl[-1]
    # the startup phase is uniformly cheap
    assert float(np.mean(responses[: phases.startup])) < 0.2 * float(
        np.mean(responses[phases.startup :])
    )
