"""Parallel mixed patterns (Section 3.1's second parallel form:
"mixing, in parallel, different basic patterns").

The paper restricted its Parallelism micro-benchmark to replicated
baselines; the pattern algebra also defines heterogeneous parallel
composition, which this bench exercises: concurrent reader + writer
processes.  Expected shape (Hints 6/7 combined): the composition costs
about the serialised sum — concurrency buys nothing, but also breaks
nothing.
"""

import numpy as np

from repro.core import baselines, detect_phases, execute, rest_device
from repro.core.patterns import ParallelMixSpec
from repro.core.report import format_table
from repro.core.runner import execute_parallel_mix
from repro.units import KIB, SEC

from conftest import ready_device, report


def test_heterogeneous_parallel_composition(once):
    device = ready_device("mtron")
    half = (device.capacity // 2 // (32 * KIB)) * 32 * KIB
    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=half,
        sequential_target_size=half,
        seed=13,
    )

    def solo_span(spec):
        run = execute(device, spec)
        span = run.trace[-1].completed_at - run.trace[0].submitted_at
        rest_device(device, 30 * SEC)
        return span

    combos = (
        ("SR", "SW"),
        ("SR", "RW"),
        ("RR", "SW"),
    )

    def run_all():
        rows = []
        for first, second in combos:
            a = specs[first]
            b = specs[second].with_(target_offset=half, seed=14)
            span_a = solo_span(a)
            span_b = solo_span(b)
            mix = execute_parallel_mix(device, ParallelMixSpec((a, b)))
            span_mix = max(
                run.trace[-1].completed_at for run in mix.runs
            ) - min(run.trace[0].submitted_at for run in mix.runs)
            rest_device(device, 60 * SEC)
            rows.append((f"{first} || {second}", span_a, span_b, span_mix))
        return rows

    rows = once(run_all)
    table = [
        (
            label,
            f"{(span_a + span_b) / SEC:.2f}",
            f"{span_mix / SEC:.2f}",
            f"x{span_mix / (span_a + span_b):.2f}",
        )
        for label, span_a, span_b, span_mix in rows
    ]
    text = format_table(
        ("composition", "serialised sum (s)", "parallel (s)", "ratio"),
        table,
    )
    text += (
        "\npaper (Hints 6/7): combining a limited number of patterns is"
        "\nacceptable; concurrency does not improve performance — both"
        "\nextend to heterogeneous parallel composition"
    )
    report("Parallel mixed patterns (Table 1's second parallel form)", text)

    for label, span_a, span_b, span_mix in rows:
        ratio = span_mix / (span_a + span_b)
        # no speedup (single queue) and no pathological blow-up either
        assert 0.85 <= ratio <= 1.6, (label, ratio)
