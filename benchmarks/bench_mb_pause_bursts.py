"""Pause and Bursts micro-benchmarks (Section 5.2, Table 3's Pause
column).

Paper observations:
1. inserting pauses improves random-write response time only on the
   high-end SSDs (asynchronous reclamation), and the pause at which RW
   behaves like SW is precisely the average RW cost itself;
2. no true time savings: the total workload time does not shrink;
3. bursts behave like pauses — the asynchronous overhead accumulates
   and is absorbed during the inter-burst gaps.
"""

import numpy as np

from repro.core import (
    baselines,
    detect_phases,
    execute,
    rest_device,
)
from repro.core.patterns import TimingKind
from repro.core.report import format_table
from repro.units import KIB, MSEC, SEC

from conftest import ready_device, report


def steady(device, spec):
    run = execute(device, spec)
    responses = np.array(run.trace.response_times())
    cut = detect_phases(responses).startup
    span = run.trace[-1].completed_at - run.trace[0].submitted_at
    rest_device(device, 60 * SEC)
    return float(responses[cut:].mean()) / 1000.0, span


def test_pause_micro_benchmark(once):
    def run_all():
        rows = []
        outcome = {}
        for name in ("mtron", "kingston_dti"):
            device = ready_device(name)
            specs = baselines(
                io_size=32 * KIB,
                io_count=384 if name == "mtron" else 160,
                random_target_size=device.capacity,
                sequential_target_size=device.capacity,
            )
            sw, __ = steady(device, specs["SW"])
            rw, rw_span = steady(device, specs["RW"])
            paused_means = {}
            for pause_ms in (0.5, rw / 2, rw, 2 * rw):
                spec = specs["RW"].with_(
                    timing=TimingKind.PAUSE,
                    pause_usec=pause_ms * MSEC,
                    seed=7,
                )
                mean, span = steady(device, spec)
                paused_means[pause_ms] = (mean, span)
                rows.append(
                    (name, f"{pause_ms:.1f}", f"{mean:.2f}", f"{sw:.2f}", f"{rw:.2f}")
                )
            outcome[name] = (sw, rw, rw_span, paused_means)
        return rows, outcome

    rows, outcome = once(run_all)
    text = format_table(
        ("device", "pause (ms)", "paused RW (ms)", "SW (ms)", "plain RW (ms)"),
        rows,
    )
    text += (
        "\npaper: pause ~= RW cost makes RW respond like SW on high-end "
        "SSDs; no effect on the others; no total-time savings either way"
    )
    report("Pause micro-benchmark: Mtron vs Kingston DTI", text)

    sw, rw, rw_span, paused = outcome["mtron"]
    # a pause of about the RW cost brings RW close to SW on the Mtron
    assert paused[rw][0] < 3 * sw
    # but a pause far below the RW cost cannot absorb the reclamation
    assert paused[0.5][0] > 0.4 * rw
    # and total time never shrinks: the reclamation still happens
    __, paused_span = paused[rw]
    assert paused_span >= rw_span * 0.9

    sw, rw, __, paused = outcome["kingston_dti"]
    # no asynchronous reclamation: pauses change nothing
    for mean, __ in paused.values():
        assert mean > 0.6 * rw


def test_bursts_micro_benchmark(once):
    device = ready_device("mtron")
    specs = baselines(
        io_size=32 * KIB,
        io_count=384,
        random_target_size=device.capacity,
    )
    sw, __ = steady(device, specs["SW"])
    rw, __ = steady(device, specs["RW"])

    def run_bursts():
        results = {}
        for burst in (10, 40, 160):
            spec = specs["RW"].with_(
                timing=TimingKind.BURST,
                pause_usec=100.0 * MSEC,
                burst=burst,
                seed=7,
            )
            results[burst], __ = steady(device, spec)
        return results

    results = once(run_bursts)
    rows = [(burst, f"{mean:.2f}") for burst, mean in results.items()]
    text = format_table(("burst size", "RW mean (ms)"), rows)
    text += (
        f"\nplain RW {rw:.2f} ms, SW {sw:.2f} ms; pause fixed at 100 ms"
        "\npaper: a similar effect is seen with the Burst micro-benchmark"
    )
    report("Bursts micro-benchmark (Mtron, 100 ms inter-burst pause)", text)

    # small bursts leave enough gap time per IO to absorb reclamation
    assert results[10] < 0.6 * rw
    # large bursts amortise the same 100 ms over many more IOs: the
    # benefit shrinks monotonically
    assert results[10] <= results[40] <= results[160] * 1.05
    assert results[160] > 0.5 * rw
