"""Device-state methodology (Section 4.1).

Paper observations:
1. out-of-the-box, the Samsung SSD wrote 16 KiB random IOs in ~1 ms;
   after the whole device had been written once, random writes slowed
   by almost an order of magnitude — measuring a fresh device is
   meaningless;
2. random-state enforcement is slow but stable; sequential-state
   enforcement is faster per pass but deteriorates, so the total
   benchmarking time ends up longer (Memoright: 17 h sequential vs one
   5 h random format).
"""

import numpy as np

from repro.core import (
    detect_phases,
    enforce_random_state,
    enforce_sequential_state,
    execute,
    rest_device,
)
from repro.core.patterns import LocationKind, PatternSpec
from repro.flashsim import build_device
from repro.iotypes import Mode
from repro.paperdata import STATE_SAMSUNG
from repro.units import KIB, MIB, SEC

from conftest import report


def rw16(capacity, io_count=512, seed=42):
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=io_count,
        target_size=(capacity // (16 * KIB)) * 16 * KIB,
        seed=seed,
    )


def test_out_of_box_measurements_are_meaningless(once):
    def run():
        device = build_device("samsung", logical_bytes=64 * MIB)
        fresh = execute(device, rw16(device.capacity, io_count=256))
        out_of_box = fresh.stats.mean_usec / 1000.0
        enforce_random_state(device)
        rest_device(device, 30 * SEC)
        run2 = execute(device, rw16(device.capacity, seed=7))
        responses = np.array(run2.trace.response_times())
        cut = detect_phases(responses).startup
        enforced = float(responses[cut:].mean()) / 1000.0
        return out_of_box, enforced

    out_of_box, enforced = once(run)
    text = (
        f"Samsung, 16 KiB random writes:\n"
        f"  out of the box:        {out_of_box:.2f} ms\n"
        f"  after random state:    {enforced:.2f} ms  "
        f"(x{enforced / out_of_box:.1f})\n"
        f"paper: ~{STATE_SAMSUNG['out_of_box_msec']:.0f} ms out of the box, "
        "almost an order of magnitude slower after writing the whole device"
    )
    report("Section 4.1: the device-state pitfall (Samsung)", text)
    assert enforced > STATE_SAMSUNG["enforced_slowdown_min"] * out_of_box


def test_random_state_repeatable_and_enforcement_costs(once):
    """The random state yields repeatable measurements (the paper's
    "well-defined state" assumption: repeat runs agreed within 5%), and
    sequential enforcement is far faster per pass (the paper's Memoright
    took 5 h for a random format vs 17 h of accumulated sequential
    formats) while converging to an equivalent steady behaviour."""

    def measure(method):
        device = build_device("mtron", logical_bytes=32 * MIB)
        if method == "random":
            state = enforce_random_state(device)
        else:
            state = enforce_sequential_state(device)
        rest_device(device, 60 * SEC)

        def steady_rw(seed):
            run = execute(
                device,
                rw16(device.capacity, io_count=768, seed=seed).with_(
                    io_size=32 * KIB
                ),
            )
            responses = np.array(run.trace.response_times())
            cut = detect_phases(responses).startup
            rest_device(device, 60 * SEC)
            return float(responses[cut:].mean()) / 1000.0

        return state.elapsed_usec, steady_rw(seed=1), steady_rw(seed=2)

    random_cost, random_first, random_second = once(lambda: measure("random"))
    seq_cost, seq_first, __ = measure("sequential")
    text = (
        f"Mtron, 32 MiB scaled device:\n"
        f"  random enforcement:     {random_cost / SEC:.1f} s simulated; "
        f"steady RW {random_first:.2f} -> {random_second:.2f} ms across runs\n"
        f"  sequential enforcement: {seq_cost / SEC:.1f} s simulated; "
        f"steady RW {seq_first:.2f} ms\n"
        "paper: random-state formatting took 5 h (Memoright) up to 35 days\n"
        "(Corsair); a single sequential format is faster but the state is\n"
        "less stable, costing more over a whole campaign"
    )
    report("Section 4.1: state enforcement cost and repeatability", text)
    # measurements from the random state repeat (paper: within ~5%)
    assert abs(random_second - random_first) / random_first < 0.25
    # sequential enforcement is much faster per pass ...
    assert seq_cost < random_cost / 2
    # ... and both states converge to the same steady random-write cost
    assert abs(seq_first - random_first) / random_first < 0.25
