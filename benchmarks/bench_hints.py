"""The seven design hints of Section 5.3, evaluated programmatically.

Each hint is checked against the class of device it targets: the
high-end Mtron for the scheduling/locality hints, the low-end Kingston
DTI for the alignment severity claim.
"""

from repro.analysis import evaluate_hints
from repro.analysis.hints import check_hint3_alignment
from repro.core.report import format_table
from repro.units import MIB

from conftest import ready_device, report


def test_all_seven_hints_hold_on_a_high_end_ssd(once):
    device = ready_device("mtron", capacity=48 * MIB)
    results = once(evaluate_hints, device)
    rows = [
        (r.hint, r.statement, "HOLDS" if r.holds else "differs", r.evidence)
        for r in results
    ]
    text = format_table(("#", "hint", "verdict", "evidence"), rows)
    report("Section 5.3: the seven design hints (Mtron)", text)
    held = [r.hint for r in results if r.holds]
    assert len(held) == 7, f"hints holding: {held}"


def test_alignment_hint_severe_on_low_end(once):
    device = ready_device("kingston_dti", capacity=16 * MIB)
    result = once(check_hint3_alignment, device)
    report(
        "Hint 3 on the Kingston DTI (severity)",
        f"{result.statement}: {result.evidence}",
    )
    assert result.holds
    # "the penalty paid for lack of alignment is quite severe"
    aligned, shifted = (
        float(part.split()[1]) for part in result.evidence.split(" vs ")
    )
    assert shifted > 5 * aligned
