"""Flash-aware database layout: applying the seven design hints.

A write-ahead log and a page store can be laid out naively (in-place
counters, unaligned records, random page writes everywhere) or
flash-aware (32 KiB aligned appends, random updates confined to a
focused area — Hints 2, 3 and 4).  This example measures both designs
on the same device and reports the speedup — the kind of algorithmic
consequence the paper's Section 5.3 calls for.

Run:  python examples/flash_aware_logging.py
"""

import random

from repro import build_device, enforce_random_state, rest_device
from repro.iotypes import IORequest, Mode
from repro.units import KIB, MIB, SEC

DEVICE = "samsung"
OPERATIONS = 600


def run_workload(device, flash_aware: bool, seed: int = 17) -> float:
    """A toy transaction loop: append a log record, update a data page.

    Naive layout: 4 KiB log records written in place at a fixed header
    location (plus an unaligned record), data pages updated randomly
    across the whole store.  Flash-aware layout: 32 KiB aligned log
    appends, updates confined to a 4 MiB hot area (with the cold pages
    rewritten sequentially in a batch, as a log-structured store would).
    """
    rng = random.Random(seed)
    capacity = device.capacity
    log_base = 0
    log_size = 16 * MIB
    store_base = log_size
    store_size = (capacity - log_size) // (32 * KIB) * (32 * KIB)
    now = device.busy_until
    start = now
    log_head = 0
    for op in range(OPERATIONS):
        if flash_aware:
            # Hint 2+3: big aligned appends; wrap within the log area
            log_lba = log_base + (log_head % log_size)
            log_head += 32 * KIB
            done = device.submit(
                IORequest(op, log_lba, 32 * KIB, Mode.WRITE), now
            )
            now = done.completed_at
            # Hint 4: random updates confined to a focused 4 MiB area
            hot = store_base + rng.randrange(4 * MIB // (32 * KIB)) * 32 * KIB
            done = device.submit(
                IORequest(op, hot, 32 * KIB, Mode.WRITE), now
            )
        else:
            # in-place header update (the Incr=0 pathology)
            done = device.submit(
                IORequest(op, log_base, 4 * KIB, Mode.WRITE), now
            )
            now = done.completed_at
            # unaligned small log record
            record = log_base + 64 * KIB + (op % 64) * 4 * KIB + 512
            done = device.submit(
                IORequest(op, record, 4 * KIB, Mode.WRITE), now
            )
            now = done.completed_at
            # random page write over the whole store
            page = store_base + rng.randrange(store_size // (32 * KIB)) * 32 * KIB
            done = device.submit(
                IORequest(op, page, 32 * KIB, Mode.WRITE), now
            )
        now = done.completed_at
    return (now - start) / OPERATIONS / 1000.0  # ms per transaction


def main() -> None:
    print(f"preparing {DEVICE} ...")
    device = build_device(DEVICE, logical_bytes=64 * MIB)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)

    naive = run_workload(device, flash_aware=False)
    rest_device(device, 60 * SEC)
    aware = run_workload(device, flash_aware=True)

    print(f"\n{DEVICE}, {OPERATIONS} transactions:")
    print(f"  naive layout:       {naive:8.2f} ms per transaction")
    print(f"  flash-aware layout: {aware:8.2f} ms per transaction")
    print(f"  speedup:            x{naive / aware:.1f}")
    print(
        "\napplied hints: 2 (32 KiB blocks), 3 (alignment), "
        "4 (focused random writes); avoided the in-place pathology"
    )


if __name__ == "__main__":
    main()
