"""A complete uFLIP benchmarking campaign, end to end.

Follows the paper's methodology exactly (Sections 4 and 5.1):

1. enforce the random initial state;
2. measure start-up and running phases of the four baselines and derive
   IOIgnore / IOCount;
3. determine the inter-run pause with the SR/RW/SR probe;
4. build a benchmark plan for several micro-benchmarks (sequential-write
   experiments delayed and grouped, state resets only when the target
   space is exhausted);
5. execute the plan and export the results as CSV.

Run:  python examples/full_uflip_campaign.py [profile] [output-dir]
"""

import sys
from pathlib import Path

from repro import (
    BenchContext,
    BenchmarkPlan,
    baselines,
    build_device,
    build_microbenchmark,
    determine_pause,
    enforce_random_state,
    measure_phases,
    rest_device,
    run_control_for,
)
from repro.core.report import experiment_to_csv, render_experiment
from repro.units import KIB, MIB, SEC


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "mtron"
    out_dir = Path(sys.argv[2] if len(sys.argv) > 2 else "campaign_results")
    device = build_device(profile, logical_bytes=64 * MIB)
    print(f"campaign target: {device.describe()}")

    print("\n[1/5] enforcing the random initial state ...")
    state = enforce_random_state(device)
    print(f"      {state.io_count} IOs, {state.elapsed_usec / SEC:.0f} s simulated")
    rest_device(device, 60 * SEC)

    print("[2/5] measuring start-up and running phases ...")
    phase_specs = baselines(
        io_size=32 * KIB,
        io_count=640,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    phases = measure_phases(device, phase_specs)
    for label, analysis in phases.analyses.items():
        print(f"      {label}: {analysis.summary()}")
    io_ignore, io_count = run_control_for(
        phases.startup_bound, phases.period_bound
    )
    io_ignore, io_count = min(io_ignore, 220), min(io_count, 440)
    print(f"      -> IOIgnore={io_ignore}, IOCount={io_count}")
    rest_device(device, 60 * SEC)

    print("[3/5] determining the inter-run pause (SR/RW/SR probe) ...")
    pause = determine_pause(device, reads_before=128, write_count=192,
                            reads_after=2048)
    print(f"      {pause.summary()}")
    rest_device(device, pause.recommended_pause_usec)

    print("[4/5] building the benchmark plan ...")
    ctx = BenchContext(
        capacity=device.capacity,
        io_size=32 * KIB,
        io_count=io_count,
        io_ignore=io_ignore,
    )
    experiments = []
    experiments.extend(
        build_microbenchmark(
            "granularity", ctx, sizes=(4 * KIB, 16 * KIB, 32 * KIB, 128 * KIB)
        ).experiments
    )
    experiments.extend(
        build_microbenchmark(
            "locality", ctx,
            multipliers_random=(32, 256, 1024),
            multipliers_sequential=(32,),
        ).experiments
    )
    experiments.extend(
        build_microbenchmark("order", ctx, increments=(-1, 0, 1, 8)).experiments
    )
    plan = BenchmarkPlan.build(
        experiments, capacity=device.capacity, align=device.geometry.block_size
    )
    print(
        f"      {len(experiments)} experiments, {plan.reset_count} "
        "planned state reset(s)"
    )

    print("[5/5] executing ...")
    results = plan.execute(
        device,
        lambda dev: enforce_random_state(dev, seed=99),
        pause_usec=pause.recommended_pause_usec,
    )

    out_dir.mkdir(exist_ok=True)
    for name, result in results.items():
        print()
        print(render_experiment(result))
        path = out_dir / (name.replace("/", "_") + ".csv")
        path.write_text(experiment_to_csv(result))
    print(f"\nCSV results written to {out_dir}/")


if __name__ == "__main__":
    main()
