"""What-if analysis: replay one workload's trace across devices.

Capture the IO trace of an OLTP-style workload once, then replay it
(closed loop, like the original synchronous host) against the other
devices of Table 2 — the purchase decision the paper's Section 5.3
says must be made by measurement, answered without re-running the
application.

Run:  python examples/workload_whatif.py
"""

from repro import build_device, enforce_random_state, rest_device
from repro.core.replay import ReplayMode, replay
from repro.core.report import format_table
from repro.core.workloads import evaluate_workload, oltp_mix
from repro.flashsim.trace import IOTrace
from repro.units import KIB, MIB, SEC

SOURCE = "kingston_dti"
TARGETS = ("kingston_dti", "transcend_module", "samsung", "memoright")
CAPACITY = 32 * MIB


def prepare(name):
    device = build_device(name, logical_bytes=CAPACITY)
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    return device


def main() -> None:
    print(f"capturing the workload on {SOURCE} ...")
    source = prepare(SOURCE)
    workload = oltp_mix(
        source.capacity,
        page_size=32 * KIB,
        io_count=384,
        reads_per_write=3,
        working_set=8 * MIB,
    )
    report = evaluate_workload(source, "oltp 3:1", workload)
    print(f"  {report.summary()}")

    # serialise the captured trace exactly as the paper publishes runs
    from repro.core.runner import execute_mix

    run = execute_mix(source, workload)
    rows = IOTrace.parse_csv(run.trace.to_csv())
    original_span = rows[-1].completed_at - rows[0].submitted_at

    table = []
    for name in TARGETS:
        device = prepare(name)
        result = replay(device, rows, mode=ReplayMode.CLOSED_LOOP)
        table.append(
            (
                name,
                f"{result.stats.mean_usec / 1000:.2f}",
                f"{result.replay_span_usec / SEC:.2f}",
                f"x{original_span / result.replay_span_usec:.1f}",
            )
        )

    print()
    print(
        format_table(
            ("device", "mean rt (ms)", "workload time (s)", "speedup vs source"),
            table,
        )
    )
    print(
        "\nthe same trace, four devices: the high-end SSDs absorb the "
        "random page updates that dominate the stick's running time "
        "(Table 3's RW column, applied to a real workload)"
    )


if __name__ == "__main__":
    main()
