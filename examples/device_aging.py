"""Device aging: how long will a flash device last under your workload?

The paper rules aging out of the benchmark (footnote 1: reaching the
erase limit "may take years"); the simulator compresses those years.
This example runs three workload profiles against one device, projects
the lifetime each one allows, and shows how the FTL's write
amplification — not the raw write volume — decides who kills the
device first.

The second half ages a page-map device for real: a duty-cycled update
workload (a burst of random writes, then an hour of idle) driven
entirely by the closed-form GC-epoch kernel, with periodic snapshot
checkpoints along the way.  The kernel is what makes the compression
practical — every burst sits in free-pool steady state, where the
per-IO reference path would spend most of its time — and each packed
checkpoint is a restorable wear regime for later experiments.

Run:  python examples/device_aging.py
"""

import time

from repro import build_device, enforce_random_state, execute, rest_device
from repro.core.patterns import LocationKind, PatternSpec
from repro.core.report import format_table
from repro.flashsim import analytic
from repro.flashsim.ftl.pagemap import PageMapConfig
from repro.flashsim.profiles import scaled_profile
from repro.flashsim.snapshot import pack_snapshot
from repro.flashsim.wear import project_lifetime, wear_report
from repro.iotypes import Mode
from repro.units import KIB, MIB, SEC

DEVICE = "mtron"
IO_COUNT = 768

#: aging loop shape: ``AGING_ROUNDS`` bursts of ``AGING_IOS`` random
#: 16 KiB updates, an hour of simulated idle after each burst, and a
#: packed snapshot checkpoint every ``CHECKPOINT_EVERY`` rounds
AGING_ROUNDS = 12
AGING_IOS = 2048
CHECKPOINT_EVERY = 4


def workload(name: str, capacity: int) -> PatternSpec:
    area = (capacity // (32 * KIB)) * 32 * KIB
    if name == "log appends (sequential)":
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=IO_COUNT,
            target_size=area,
        )
    if name == "OLTP page updates (wide random)":
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=32 * KIB,
            io_count=IO_COUNT,
            target_size=area,
        )
    # a flash-aware design: random updates confined to a focused area
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=32 * KIB,
        io_count=IO_COUNT,
        target_size=min(4 * MIB, area),
    )


def aging_loop() -> None:
    """Age a page-map device through GC steady state, analytically.

    The tight-spare, foreground-GC variant keeps the free pool at the
    collection watermark, so every burst runs through the GC-epoch
    kernel: closed-form appends between collections, the real
    relocation step at each one.  Wear, collections and the simulated
    clock all advance exactly as the per-IO reference would move them —
    just at a fraction of the wall cost.
    """
    profile = scaled_profile(
        "ideal_pagemap",
        name="ideal_pagemap-aging",
        spare_blocks=8,
        pagemap=PageMapConfig(gc_low_blocks=4, bg_enabled=False),
    )
    device = profile.build(16 * MIB)
    print(f"\naging {device.describe()}")
    enforce_random_state(device)

    burst = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=16 * KIB,
        io_count=AGING_IOS,
        target_size=device.capacity,
    )
    before = wear_report(device)
    gc_before = device.ftl.gc_collections
    sim_start = device.busy_until
    analytic.STATS.reset()
    checkpoints = []
    wall_start = time.perf_counter()
    for round_no in range(1, AGING_ROUNDS + 1):
        execute(device, burst)
        rest_device(device, 3600 * SEC)
        if round_no % CHECKPOINT_EVERY == 0:
            packed = pack_snapshot(device.snapshot())
            checkpoints.append((round_no, packed.nbytes))
    wall_sec = max(time.perf_counter() - wall_start, 1e-9)

    after = wear_report(device)
    counters = analytic.STATS.counters()
    sim_hours = (device.busy_until - sim_start) / SEC / 3600
    print(
        f"aged {sim_hours:.1f} simulated hours in {wall_sec:.2f} s of "
        f"wall time — {sim_hours / wall_sec:.1f} sim-hours per "
        f"wall-second"
    )
    print(
        f"  {AGING_ROUNDS * AGING_IOS} random 16 KiB updates in "
        f"{counters['core.analytic.epoch_windows']} GC-epoch windows, "
        f"{device.ftl.gc_collections - gc_before} collections, "
        f"{after.total_erases - before.total_erases} block erases"
    )
    marks = ", ".join(f"round {r}" for r, _ in checkpoints)
    kib = checkpoints[-1][1] // 1024 if checkpoints else 0
    print(
        f"  checkpoints at {marks} ({kib} KiB packed each) — restore "
        f"any of them to replay a wear regime"
    )


def main() -> None:
    device = build_device(DEVICE, logical_bytes=64 * MIB)
    print(f"preparing {device.describe()}")
    enforce_random_state(device)
    rest_device(device, 60 * SEC)

    rows = []
    names = (
        "log appends (sequential)",
        "OLTP page updates (wide random)",
        "OLTP updates, focused area (flash-aware)",
    )
    for name in names:
        before = wear_report(device)
        run = execute(device, workload(name, device.capacity))
        after = wear_report(device)
        elapsed = run.trace[-1].completed_at - run.trace[0].submitted_at
        projection = project_lifetime(
            device, before, after, elapsed, IO_COUNT * 32 * KIB
        )
        rest_device(device, 60 * SEC)
        volume = (
            "inf"
            if projection.projected_bytes == float("inf")
            else f"{projection.projected_bytes / (1 << 40):.1f}"
        )
        rows.append(
            (
                name,
                f"{run.stats.mean_usec / 1000:.2f}",
                f"{projection.write_amplification:.2f}",
                volume,
            )
        )

    print()
    print(
        format_table(
            (
                "workload",
                "mean rt (ms)",
                "write amplification",
                "host TiB until wear-out",
            ),
            rows,
        )
    )
    final = wear_report(device)
    print(f"\nwear after the session: {final.summary()}")
    print(
        "\ntakeaway: the flash-aware layout (Hint 4) extends device life "
        "for the same host write volume — write amplification is the "
        "lifetime lever, and it is an FTL-behaviour property the uFLIP "
        "patterns expose"
    )
    aging_loop()


if __name__ == "__main__":
    main()
