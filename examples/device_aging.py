"""Device aging: how long will a flash device last under your workload?

The paper rules aging out of the benchmark (footnote 1: reaching the
erase limit "may take years"); the simulator compresses those years.
This example runs three workload profiles against one device, projects
the lifetime each one allows, and shows how the FTL's write
amplification — not the raw write volume — decides who kills the
device first.

Run:  python examples/device_aging.py
"""

from repro import build_device, enforce_random_state, execute, rest_device
from repro.core.patterns import LocationKind, PatternSpec
from repro.core.report import format_table
from repro.flashsim.wear import project_lifetime, wear_report
from repro.iotypes import Mode
from repro.units import KIB, MIB, SEC

DEVICE = "mtron"
IO_COUNT = 768


def workload(name: str, capacity: int) -> PatternSpec:
    area = (capacity // (32 * KIB)) * 32 * KIB
    if name == "log appends (sequential)":
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.SEQUENTIAL,
            io_size=32 * KIB,
            io_count=IO_COUNT,
            target_size=area,
        )
    if name == "OLTP page updates (wide random)":
        return PatternSpec(
            mode=Mode.WRITE,
            location=LocationKind.RANDOM,
            io_size=32 * KIB,
            io_count=IO_COUNT,
            target_size=area,
        )
    # a flash-aware design: random updates confined to a focused area
    return PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.RANDOM,
        io_size=32 * KIB,
        io_count=IO_COUNT,
        target_size=min(4 * MIB, area),
    )


def main() -> None:
    device = build_device(DEVICE, logical_bytes=64 * MIB)
    print(f"preparing {device.describe()}")
    enforce_random_state(device)
    rest_device(device, 60 * SEC)

    rows = []
    names = (
        "log appends (sequential)",
        "OLTP page updates (wide random)",
        "OLTP updates, focused area (flash-aware)",
    )
    for name in names:
        before = wear_report(device)
        run = execute(device, workload(name, device.capacity))
        after = wear_report(device)
        elapsed = run.trace[-1].completed_at - run.trace[0].submitted_at
        projection = project_lifetime(
            device, before, after, elapsed, IO_COUNT * 32 * KIB
        )
        rest_device(device, 60 * SEC)
        volume = (
            "inf"
            if projection.projected_bytes == float("inf")
            else f"{projection.projected_bytes / (1 << 40):.1f}"
        )
        rows.append(
            (
                name,
                f"{run.stats.mean_usec / 1000:.2f}",
                f"{projection.write_amplification:.2f}",
                volume,
            )
        )

    print()
    print(
        format_table(
            (
                "workload",
                "mean rt (ms)",
                "write amplification",
                "host TiB until wear-out",
            ),
            rows,
        )
    )
    final = wear_report(device)
    print(f"\nwear after the session: {final.summary()}")
    print(
        "\ntakeaway: the flash-aware layout (Hint 4) extends device life "
        "for the same host write volume — write amplification is the "
        "lifetime lever, and it is an FTL-behaviour property the uFLIP "
        "patterns expose"
    )


if __name__ == "__main__":
    main()
