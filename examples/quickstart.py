"""Quickstart: benchmark one simulated flash device with uFLIP.

Builds the Mtron SSD profile, enforces the random initial state
(Section 4.1 of the paper), runs the four baseline patterns, analyses
the two-phase behaviour of random writes, and prints a summary.

Run:  python examples/quickstart.py
"""

from repro import (
    baselines,
    build_device,
    detect_phases,
    enforce_random_state,
    execute,
    rest_device,
)
from repro.analysis import plot_trace
from repro.units import KIB, SEC


def main() -> None:
    # 1. build a device (capacities are scaled; behaviour is calibrated
    #    to the paper's Table 3)
    device = build_device("mtron")
    print(f"device: {device.describe()}")

    # 2. enforce the well-defined random state: write the whole device
    #    with random IOs of random size (on the real 16 GB Mtron this
    #    took hours; the simulator does it in simulated time)
    report = enforce_random_state(device)
    print(
        f"state enforced: {report.io_count} IOs, "
        f"{report.elapsed_usec / SEC:.0f} s simulated"
    )
    rest_device(device, 60 * SEC)

    # 3. run the four baseline patterns at the paper's 32 KiB
    specs = baselines(
        io_size=32 * KIB,
        io_count=512,
        random_target_size=device.capacity,
        sequential_target_size=device.capacity,
    )
    print("\nbaseline patterns (32 KiB):")
    rw_run = None
    for label in ("SR", "RR", "SW", "RW"):
        run = execute(device, specs[label])
        print(f"  {label}: {run.stats.summary()}")
        if label == "RW":
            rw_run = run
        rest_device(device, 30 * SEC)

    # 4. the two-phase model: random writes start cheap (the start-up
    #    phase) and then oscillate — mean response time is only
    #    meaningful past the start-up (Section 4.2)
    responses = rw_run.trace.response_times()
    phases = detect_phases(responses)
    print(f"\nrandom-write phases: {phases.summary()}")
    steady = rw_run.restat(io_ignore=phases.startup)
    print(f"running-phase statistics: {steady.summary()}")
    print()
    print(plot_trace(responses[:320], title="random-write trace (Figure 3 shape)"))


if __name__ == "__main__":
    main()
