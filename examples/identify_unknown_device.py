"""Identify an unknown flash device by its IO-pattern fingerprint.

Section 5.2 argues Table 3's indicators "could be used as the basis for
a coarse classification or categorization".  This example plays the
game for real: it picks a mystery device (hidden behind a generic
name), measures its uFLIP characteristics blind, and matches the
fingerprint against the paper's seven published devices.

Run:  python examples/identify_unknown_device.py [profile]
"""

import sys

from repro import build_device, enforce_random_state, rest_device
from repro.analysis import classify, summarize_device
from repro.analysis.fingerprint import fingerprint
from repro.core.report import format_table
from repro.units import MIB, SEC

DEFAULT_MYSTERY = "samsung"


def main() -> None:
    mystery = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_MYSTERY
    device = build_device(mystery, logical_bytes=64 * MIB)
    # hide the identity: everything below sees only "unknown"
    device.name = "unknown"

    print("measuring the unknown device (uFLIP key characteristics) ...")
    enforce_random_state(device)
    rest_device(device, 60 * SEC)
    summary = summarize_device(device, "unknown")

    print(
        f"\nmeasured: SR={summary.sr:.1f} RR={summary.rr:.1f} "
        f"SW={summary.sw:.1f} RW={summary.rw:.0f} ms; "
        f"pause effect={'yes' if summary.pause_rw else 'no'}; "
        f"locality={'no' if summary.locality_mb is None else f'{summary.locality_mb:.0f} MB'}; "
        f"in-place x{summary.in_place:.1f}"
    )
    tier = classify(summary)
    print(f"class: {tier.tier.value} ({'; '.join(tier.reasons)})")

    matches = fingerprint(summary)
    rows = [
        (rank + 1, match.device, f"{match.distance:.2f}",
         f"{match.paper.rw:.0f} ms RW")
        for rank, match in enumerate(matches)
    ]
    print()
    print(format_table(("rank", "paper device", "distance", "paper RW"), rows))
    verdict = matches[0].device
    print(
        f"\nverdict: the unknown device behaves like the paper's "
        f"'{verdict}'"
        + (" — correct!" if verdict == mystery else f" (it was '{mystery}')")
    )


if __name__ == "__main__":
    main()
