"""External sort on flash: how many runs can the merge phase write?

The paper motivates its Partitioning micro-benchmark with exactly this
workload (Section 3.2): *this pattern represents, for instance, a merge
operation of several buckets during external sort.*  Hint 5 concludes
that concurrent sequential writes to 4-8 partitions are acceptable and
beyond that performance degrades to random writes.

This example sizes the fan-out of an external sort's partition phase on
two devices by measuring the partitioned-write cost directly.

Run:  python examples/external_sort_partitioning.py
"""

from repro import build_device, enforce_random_state, execute, rest_device
from repro.core.patterns import LocationKind, PatternSpec
from repro.core.report import format_table
from repro.iotypes import Mode
from repro.units import KIB, MIB, SEC

IO_SIZE = 32 * KIB  # Hint 2's block size
FAN_OUTS = (1, 2, 4, 8, 16, 32)


def measure_partition_cost(device, partitions: int) -> float:
    """Mean cost (ms) of round-robin sequential writes to N partitions,
    long enough to out-run any background free-pool head-room."""
    span = 4 * device.geometry.block_size
    target = partitions * span
    spec = PatternSpec(
        mode=Mode.WRITE,
        location=LocationKind.PARTITIONED,
        io_size=IO_SIZE,
        io_count=640,
        io_ignore=200,
        target_size=target,
        partitions=partitions,
    )
    run = execute(device, spec)
    rest_device(device, 10 * SEC)
    return run.stats.mean_usec / 1000.0


def pick_fan_out(costs: dict[int, float], tolerance: float = 2.0) -> int:
    """Largest fan-out whose per-IO cost stays within ``tolerance`` of
    the single-stream cost."""
    single = costs[1]
    best = 1
    for partitions, cost in costs.items():
        if cost <= tolerance * single and partitions > best:
            best = partitions
    return best


def main() -> None:
    rows = []
    recommendations = {}
    for name in ("mtron", "kingston_dthx"):
        device = build_device(name, logical_bytes=64 * MIB)
        print(f"preparing {name} ...")
        enforce_random_state(device)
        rest_device(device, 60 * SEC)
        costs = {p: measure_partition_cost(device, p) for p in FAN_OUTS}
        recommendations[name] = pick_fan_out(costs)
        for partitions, cost in costs.items():
            rows.append((name, partitions, f"{cost:.2f}",
                         f"x{cost / costs[1]:.1f}"))

    print()
    print(format_table(
        ("device", "merge fan-out", "cost per 32K write (ms)", "vs 1 stream"),
        rows,
    ))
    print()
    for name, fan_out in recommendations.items():
        print(
            f"{name}: an external sort should merge at most {fan_out} runs "
            f"at a time (writing more buckets degenerates to random writes)"
        )
        print(
            f"  -> sorting N pages needs ceil(log_{fan_out}(N / memory)) "
            "merge passes; a wider fan-out would LOSE time per pass"
        )


if __name__ == "__main__":
    main()
