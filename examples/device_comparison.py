"""Device comparison: which flash device should your system buy?

Section 5.3's warning: *the price label is not always indicative of
relative performance, and therefore designers of high-performance
systems should carefully choose their flash devices.*  This example
measures a set of candidate devices, derives their Table 3 key
characteristics, classifies them and checks price against performance.

Run:  python examples/device_comparison.py
"""

from repro import build_device, enforce_random_state, rest_device
from repro.analysis import (
    classify,
    price_performance_note,
    render_table3,
    summarize_device,
)
from repro.flashsim import get_profile
from repro.units import MIB, SEC

CANDIDATES = ("memoright", "samsung", "transcend32", "kingston_dthx")


def main() -> None:
    summaries = []
    for name in CANDIDATES:
        profile = get_profile(name)
        print(f"measuring {profile.brand} {profile.model} (${profile.price_usd}) ...")
        device = build_device(name, logical_bytes=64 * MIB)
        enforce_random_state(device)
        rest_device(device, 60 * SEC)
        summaries.append(summarize_device(device, name))

    print()
    print(render_table3(summaries, with_paper=False))

    print("\nclassification:")
    for summary in summaries:
        result = classify(summary)
        print(f"  {summary.name:16s} {result.tier.value:10s} "
              f"({'; '.join(result.reasons)})")

    print("\nprice vs performance:")
    note = price_performance_note(
        [(s, get_profile(s.name).price_usd) for s in summaries]
    )
    for line in note.splitlines():
        print(f"  {line}")

    # a concrete recommendation, the way a systems group would read it
    best = min(summaries, key=lambda s: s.rw)
    cheapest_ok = min(
        (s for s in summaries if classify(s).tier.value != "low-end"),
        key=lambda s: get_profile(s.name).price_usd,
        default=best,
    )
    print(
        f"\nbest random writes: {best.name} ({best.rw:.1f} ms); "
        f"cheapest non-low-end: {cheapest_ok.name} "
        f"(${get_profile(cheapest_ok.name).price_usd})"
    )


if __name__ == "__main__":
    main()
